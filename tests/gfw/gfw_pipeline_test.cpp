// End-to-end tests of the GFW middlebox: flow tracking, probe dispatch,
// stage gating, fingerprint stamping, and blocking integration.
#include <gtest/gtest.h>

#include "gfw/gfw.h"
#include "servers/upstream.h"

namespace gfwsim::gfw {
namespace {

bool is_domestic(net::Ipv4 ip) { return (ip.value >> 24) != 203; }

struct PipelineFixture : ::testing::Test {
  net::EventLoop loop;
  net::Network net{loop};
  servers::SimulatedInternet internet{crypto::Rng(9)};

  net::Host& client_host = net.add_host(net::Ipv4(116, 1, 1, 1));
  net::Host& server_host = net.add_host(net::Ipv4(203, 0, 113, 10));
  net::Endpoint server_ep{server_host.addr(), 8388};

  GfwConfig base_config() {
    GfwConfig config;
    config.is_domestic = is_domestic;
    return config;
  }

  // A sink server: accepts and ignores everything.
  void install_sink() {
    server_host.listen(8388, [this](std::shared_ptr<net::Connection> conn) {
      sink_conns.push_back(conn);
      conn->set_callbacks({});
    });
  }

  // A responding server: answers any data with random bytes (the paper's
  // Exp 1.b server).
  void install_responder() {
    server_host.listen(8388, [this](std::shared_ptr<net::Connection> conn) {
      sink_conns.push_back(conn);
      auto* raw = conn.get();
      net::ConnectionCallbacks cb;
      cb.on_data = [this, raw](ByteSpan) {
        crypto::Rng rng(static_cast<std::uint64_t>(sink_conns.size()));
        raw->send(rng.bytes(1 + rng.uniform(0, 999)));
      };
      conn->set_callbacks(std::move(cb));
    });
  }

  std::vector<std::shared_ptr<net::Connection>> sink_conns;
};

TEST_F(PipelineFixture, FlaggedConnectionProducesStage1Probes) {
  install_sink();
  Gfw gfw(net, base_config(), 0x11);
  net.add_middlebox(&gfw);

  crypto::Rng rng(1);
  gfw.flag_connection(server_ep, rng.bytes(594));
  loop.run_until(net::hours(600));  // cover the heavy delay tail

  ASSERT_GT(gfw.log().size(), 0u);
  bool has_r1 = false;
  for (const auto& record : gfw.log().records()) {
    EXPECT_TRUE(record.type == probesim::ProbeType::kR1 ||
                record.type == probesim::ProbeType::kR2 ||
                record.type == probesim::ProbeType::kNR2)
        << probesim::probe_type_name(record.type);
    has_r1 |= record.type == probesim::ProbeType::kR1;
    EXPECT_EQ(record.server, server_ep);
  }
  EXPECT_TRUE(has_r1);
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, SinkServerNeverUnlocksStage2) {
  // Section 4.2: thousands of probes to sink servers were all R1/R2/NR2.
  install_sink();
  Gfw gfw(net, base_config(), 0x12);
  net.add_middlebox(&gfw);

  crypto::Rng rng(2);
  for (int i = 0; i < 20; ++i) gfw.flag_connection(server_ep, rng.bytes(594));
  loop.run_until(net::hours(600));

  EXPECT_GT(gfw.log().size(), 20u);
  for (const auto& record : gfw.log().records()) {
    EXPECT_NE(record.type, probesim::ProbeType::kR3);
    EXPECT_NE(record.type, probesim::ProbeType::kR4);
    EXPECT_NE(record.type, probesim::ProbeType::kR5);
    EXPECT_NE(record.type, probesim::ProbeType::kNR1);
  }
  EXPECT_EQ(gfw.servers_in_stage2(), 0u);
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, RespondingServerUnlocksStage2) {
  // The paper's Exp 1.b: once the server answers probes with data, R3/R4
  // (and NR1) appear.
  install_responder();
  Gfw gfw(net, base_config(), 0x13);
  net.add_middlebox(&gfw);

  crypto::Rng rng(3);
  for (int i = 0; i < 6; ++i) gfw.flag_connection(server_ep, rng.bytes(594));
  loop.run_until(net::hours(700));

  int stage2_probes = 0;
  for (const auto& record : gfw.log().records()) {
    if (record.type == probesim::ProbeType::kR3 ||
        record.type == probesim::ProbeType::kR4 ||
        record.type == probesim::ProbeType::kNR1) {
      ++stage2_probes;
    }
  }
  EXPECT_GT(stage2_probes, 10);
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, StagingAblationSendsStage2Immediately) {
  install_sink();
  GfwConfig config = base_config();
  config.enable_staging = false;
  Gfw gfw(net, config, 0x14);
  net.add_middlebox(&gfw);

  crypto::Rng rng(4);
  gfw.flag_connection(server_ep, rng.bytes(594));
  loop.run_until(net::hours(60));

  int stage2_probes = 0;
  for (const auto& record : gfw.log().records()) {
    if (record.type == probesim::ProbeType::kR3 ||
        record.type == probesim::ProbeType::kR4 ||
        record.type == probesim::ProbeType::kNR1) {
      ++stage2_probes;
    }
  }
  // The ablated GFW probes a sink with stage-2 types — contradicting the
  // paper's observation, which is the point of the ablation.
  EXPECT_GT(stage2_probes, 0);
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, ReplayProbesReplayTheRecordedPayload) {
  install_sink();
  Gfw gfw(net, base_config(), 0x15);
  net.add_middlebox(&gfw);

  // Capture what the server receives.
  Bytes seen_payload;
  server_host.stop_listening(8388);
  server_host.listen(8388, [&](std::shared_ptr<net::Connection> conn) {
    sink_conns.push_back(conn);
    net::ConnectionCallbacks cb;
    cb.on_data = [&](ByteSpan data) {
      if (seen_payload.empty()) seen_payload.assign(data.begin(), data.end());
    };
    conn->set_callbacks(std::move(cb));
  });

  crypto::Rng rng(5);
  const Bytes original = rng.bytes(594);
  gfw.flag_connection(server_ep, original);
  loop.run_until(net::hours(600));

  // The first replay-based probe that arrived must be R1 == original or a
  // byte-changed variant of it (same length).
  ASSERT_FALSE(seen_payload.empty());
  EXPECT_EQ(seen_payload.size(), original.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    differing += seen_payload[i] != original[i];
  }
  EXPECT_LE(differing, 10u);  // R1: 0; R2: 1; R3: 10; NR2 has length 221
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, ProbesCarryPoolFingerprints) {
  install_sink();
  Gfw gfw(net, base_config(), 0x16);
  net.add_middlebox(&gfw);

  crypto::Rng rng(6);
  for (int i = 0; i < 10; ++i) gfw.flag_connection(server_ep, rng.bytes(594));
  loop.run_until(net::hours(600));

  ASSERT_GT(gfw.log().size(), 10u);
  for (const auto& record : gfw.log().records()) {
    EXPECT_TRUE(gfw.pool().is_prober_address(record.src_ip));
    EXPECT_GE(record.ttl, 46);
    EXPECT_LE(record.ttl, 50);
    EXPECT_GE(record.src_port, 1212);
    EXPECT_GE(record.tsval_process, 0);
    EXPECT_LT(record.tsval_process, 7);
    EXPECT_NE(record.asn, 0);
  }
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, PassiveClassifierTriggersOnRealFlows) {
  install_sink();
  GfwConfig config = base_config();
  config.classifier.base_rate = 1.0;  // always trigger when weight > 0
  Gfw gfw(net, config, 0x17);
  net.add_middlebox(&gfw);

  // A border-crossing connection whose first data packet is mid-band
  // high-entropy: guaranteed flag at base_rate 1.
  crypto::Rng rng(7);
  net::ConnectionCallbacks cb;
  auto conn = client_host.connect(server_ep, std::move(cb));
  loop.run_until(loop.now() + net::seconds(2));
  conn->send(rng.bytes(594));
  loop.run_until(loop.now() + net::seconds(2));

  EXPECT_EQ(gfw.flows_flagged(), 1u);
  EXPECT_GE(gfw.flows_inspected(), 1u);
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, OnlyFirstDataPacketIsClassified) {
  install_sink();
  GfwConfig config = base_config();
  config.classifier.base_rate = 1.0;
  Gfw gfw(net, config, 0x18);
  net.add_middlebox(&gfw);

  crypto::Rng rng(8);
  auto conn = client_host.connect(server_ep, {});
  loop.run_until(loop.now() + net::seconds(2));
  conn->send(rng.bytes(30));   // first packet: too short, not flagged
  loop.run_until(loop.now() + net::seconds(1));
  conn->send(rng.bytes(594));  // later packet: ignored by design
  loop.run_until(loop.now() + net::seconds(2));

  EXPECT_EQ(gfw.flows_flagged(), 0u);
  net.remove_middlebox(&gfw);
}

TEST_F(PipelineFixture, BlockedServerStopsCompletingHandshakes) {
  install_sink();
  GfwConfig config = base_config();
  config.blocking.block_probability = 1.0;
  config.blocking.confirmation_threshold = 0.01;  // one probe suffices here
  config.blocking.block_by_ip_fraction = 0.0;
  // Outlast the 600 simulated hours this test runs for.
  config.blocking.min_block_duration = net::hours(1000);
  config.blocking.max_block_duration = net::hours(1200);
  Gfw gfw(net, config, 0x19);
  net.add_middlebox(&gfw);

  crypto::Rng rng(9);
  gfw.flag_connection(server_ep, rng.bytes(594));
  loop.run_until(net::hours(600));
  ASSERT_TRUE(gfw.blocking().is_blocked(server_ep));

  bool connected = false;
  net::ConnectionCallbacks cb;
  cb.on_connected = [&] { connected = true; };
  auto conn = client_host.connect(server_ep, std::move(cb));
  loop.run_until(loop.now() + net::seconds(5));
  EXPECT_FALSE(connected);  // SYN passes, SYN/ACK is null-routed
  net.remove_middlebox(&gfw);
}

}  // namespace
}  // namespace gfwsim::gfw
