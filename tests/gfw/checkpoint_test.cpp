// Checkpoint format stability: the journal is what lets a multi-day
// campaign survive a kill, so its byte layout must not drift silently.
// The round-trip tests pin serialize∘parse == identity in both
// directions, the golden digest pins the exact bytes version 1 produces,
// and the rejection tests pin the failure modes (wrong magic, future
// version, foreign campaign, torn tail).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "crypto/sha1.h"
#include "gfw/checkpoint.h"

namespace gfwsim {
namespace {

// A fully-populated synthetic shard: every field non-default so a
// dropped or reordered field moves the golden digest.
gfw::ShardSummary make_summary() {
  gfw::ShardSummary s;
  s.shard_index = 3;
  s.seed = 0xDEADBEEFCAFEF00Dull;
  s.connections_launched = 101;
  s.control_contacts = 1;
  s.flows_inspected = 99;
  s.flows_flagged = 17;
  s.segments_transmitted = 5000;
  s.segments_delivered = 4900;
  s.payload_bytes_delivered = 123456789;
  s.segments_dropped_middlebox = 40;
  s.segments_dropped_loss = 50;
  s.segments_dropped_outage = 10;
  s.segments_duplicated = 25;
  s.segments_reordered = 12;
  s.retransmissions = 33;
  s.probe_connect_retries = 4;
  s.teardown.leaked_established = 0;
  s.teardown.live_established = 2;
  s.teardown.embryonic = 1;
  s.teardown.half_closed = 3;
  s.teardown.stale_registrations = 0;
  s.teardown.expired_registrations = 7;
  s.teardown.pending_timers = 5;
  s.teardown.timers_overdue = false;
  s.teardown.segments_in_flight = 0;
  s.teardown.accounting_balanced = true;
  gfw::BlockingModule::BlockEntry port_block;
  port_block.server_ip = net::Ipv4(203, 0, 113, 10);
  port_block.port = 8388;
  port_block.blocked_at = net::hours(5);
  port_block.unblock_at = net::hours(29);
  s.blocking_history.push_back(port_block);
  gfw::BlockingModule::BlockEntry ip_block;
  ip_block.server_ip = net::Ipv4(203, 0, 113, 11);
  ip_block.blocked_at = net::hours(7);
  ip_block.unblock_at = net::hours(55);
  s.blocking_history.push_back(ip_block);
  s.probes = 2;
  return s;
}

gfw::ProbeLog make_log() {
  gfw::ProbeLog log;
  gfw::ProbeRecord replay;
  replay.sent_at = net::seconds(12345);
  replay.type = probesim::ProbeType::kR3;
  replay.server = {net::Ipv4(203, 0, 113, 10), 8388};
  replay.src_ip = net::Ipv4(221, 4, 18, 99);
  replay.asn = 4134;
  replay.src_port = 31022;
  replay.ttl = 47;
  replay.tsval = 0xABCD1234;
  replay.tsval_process = 2;
  replay.payload_len = 208;
  replay.reaction = probesim::Reaction::kRst;
  replay.connect_retries = 1;
  replay.replay_delay = net::hours(570);  // the paper's maximum
  replay.is_first_replay_of_payload = true;
  replay.trigger_payload_hash = 0x1122334455667788ull;
  log.add(replay);
  gfw::ProbeRecord random_probe;
  random_probe.sent_at = net::seconds(99999);
  random_probe.type = probesim::ProbeType::kNR2;
  random_probe.server = {net::Ipv4(203, 0, 113, 10), 8388};
  random_probe.src_ip = net::Ipv4(112, 97, 3, 8);
  random_probe.asn = 4837;
  random_probe.src_port = 50001;
  random_probe.ttl = 52;
  random_probe.tsval = 17;
  random_probe.tsval_process = -1;
  random_probe.payload_len = 221;
  random_probe.reaction = probesim::Reaction::kTimeout;
  random_probe.connect_retries = 0;
  random_probe.replay_delay = net::Duration::zero();
  random_probe.is_first_replay_of_payload = false;
  random_probe.trigger_payload_hash = 0;
  log.add(random_probe);
  return log;
}

gfw::CheckpointHeader make_header() {
  gfw::CheckpointHeader header;
  header.shard_count = 4;
  header.base_seed = 0x5AA3D;
  header.scenario_fingerprint = 0xFEEDFACE12345678ull;
  return header;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "gfwsim_checkpoint_" + name;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  Bytes data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  return data;
}

void write_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

TEST(Checkpoint, ShardFrameRoundTripsByteIdentically) {
  const gfw::ShardSummary summary = make_summary();
  const gfw::ProbeLog log = make_log();

  const Bytes bytes = gfw::serialize_shard(summary, log);
  const gfw::ShardCheckpoint parsed = gfw::parse_shard(bytes);
  const Bytes again = gfw::serialize_shard(parsed.summary, parsed.log);
  EXPECT_EQ(bytes, again);  // serialize ∘ parse == identity on bytes

  // And the parse really recovered the values, not just stable bytes.
  EXPECT_EQ(parsed.summary.shard_index, 3u);
  EXPECT_EQ(parsed.summary.seed, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(parsed.summary.payload_bytes_delivered, 123456789u);
  EXPECT_EQ(parsed.summary.teardown.half_closed, 3u);
  EXPECT_TRUE(parsed.summary.teardown.accounting_balanced);
  ASSERT_EQ(parsed.summary.blocking_history.size(), 2u);
  EXPECT_EQ(parsed.summary.blocking_history[0].port, 8388);
  EXPECT_FALSE(parsed.summary.blocking_history[1].port.has_value());
  ASSERT_EQ(parsed.log.size(), 2u);
  EXPECT_EQ(parsed.log.records()[0].type, probesim::ProbeType::kR3);
  EXPECT_EQ(parsed.log.records()[0].replay_delay, net::hours(570));
  EXPECT_EQ(parsed.log.records()[1].reaction, probesim::Reaction::kTimeout);
}

TEST(Checkpoint, GoldenFrameDigestPinsFormatVersion1) {
  // SHA-1 of the synthetic frame above, captured when format version 1
  // was frozen. If this fails, the wire format changed: bump
  // kCheckpointVersion and re-pin instead of silently breaking old
  // journals.
  const Bytes bytes = gfw::serialize_shard(make_summary(), make_log());
  const auto digest = crypto::Sha1::hash(bytes);
  EXPECT_EQ(hex_encode(ByteSpan(digest.data(), digest.size())),
            "e8e24d813b4880ae4a657ab2724ed4be41e33953");
}

TEST(Checkpoint, FileRoundTripIsByteIdentical) {
  const std::string path_a = temp_path("roundtrip_a.ckpt");
  const std::string path_b = temp_path("roundtrip_b.ckpt");
  const gfw::CheckpointHeader header = make_header();
  {
    gfw::CheckpointWriter writer(path_a, header, /*append=*/false);
    writer.append_shard(make_summary(), make_log());
    gfw::ShardSummary other = make_summary();
    other.shard_index = 0;
    other.seed = 42;
    writer.append_shard(other, make_log());
  }

  const gfw::Checkpoint loaded = gfw::load_checkpoint(path_a);
  EXPECT_EQ(loaded.header.version, gfw::kCheckpointVersion);
  EXPECT_EQ(loaded.header.base_seed, header.base_seed);
  EXPECT_EQ(loaded.torn_tail_bytes, 0u);
  ASSERT_EQ(loaded.shards.size(), 2u);

  {
    gfw::CheckpointWriter writer(path_b, loaded.header, /*append=*/false);
    // Shard frames were appended in (3, 0) order; re-emit in that order.
    writer.append_shard(loaded.shards.at(3).summary, loaded.shards.at(3).log);
    writer.append_shard(loaded.shards.at(0).summary, loaded.shards.at(0).log);
  }
  EXPECT_EQ(read_file(path_a), read_file(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Checkpoint, VersionMismatchIsRejected) {
  const std::string path = temp_path("version.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
  }
  Bytes data = read_file(path);
  data[8] = 0x7F;  // version field (little-endian u32 at offset 8)
  write_file(path, data);
  EXPECT_THROW(gfw::load_checkpoint(path), gfw::CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, BadMagicIsRejected) {
  const std::string path = temp_path("magic.ckpt");
  write_file(path, to_bytes("definitely not a checkpoint file at all"));
  EXPECT_THROW(gfw::load_checkpoint(path), gfw::CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, TornTailFrameIsIgnored) {
  // The process died mid-append: everything before the torn frame loads,
  // and the torn bytes are reported so a resume can truncate them.
  const std::string path = temp_path("torn.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
  }
  Bytes data = read_file(path);
  const Bytes frame_start = {1, 0, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0xAB, 0xCD};
  append(data, frame_start);  // claims a 64 KiB payload, delivers 2 bytes
  write_file(path, data);

  const gfw::Checkpoint loaded = gfw::load_checkpoint(path);
  EXPECT_EQ(loaded.shards.size(), 1u);
  EXPECT_EQ(loaded.torn_tail_bytes, frame_start.size());

  // Appending over the torn tail truncates it first, leaving a journal
  // that loads clean with both shards.
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/true);
    gfw::ShardSummary other = make_summary();
    other.shard_index = 1;
    writer.append_shard(other, make_log());
  }
  const gfw::Checkpoint repaired = gfw::load_checkpoint(path);
  EXPECT_EQ(repaired.shards.size(), 2u);
  EXPECT_EQ(repaired.torn_tail_bytes, 0u);
  std::remove(path.c_str());
}

// --- Fleet frames (kind 2) and the fleet fingerprint -------------------

// The synthetic shard above, carrying every category of fleet data: probe
// records with nonzero server ids, region-tagged block entries, and
// per-server stats rows.
gfw::ShardSummary make_fleet_summary() {
  gfw::ShardSummary s = make_summary();
  s.blocking_history[0].region = "beijing";
  s.blocking_history[1].region = "unicom";
  gfw::ServerStats a;
  a.server_id = 0;
  a.endpoint = {net::Ipv4(203, 0, 113, 10), 8388};
  a.region = "beijing";
  a.impl = "OutlineVPN v1.0.7";
  a.cipher = "chacha20-ietf-poly1305";
  a.connections_launched = 55;
  a.payload_bytes = 987654321;
  a.probes = 2;
  a.blocks = 1;
  gfw::ServerStats b;
  b.server_id = 3;
  b.endpoint = {net::Ipv4(203, 0, 114, 2), 8389};
  b.region = "unicom";
  b.impl = "Shadowsocks-python";
  b.cipher = "aes-256-cfb";
  b.connections_launched = 46;
  b.payload_bytes = 11223344;
  b.probes = 0;
  b.blocks = 0;
  s.servers = {a, b};
  return s;
}

gfw::ProbeLog make_fleet_log() {
  const gfw::ProbeLog base = make_log();
  gfw::ProbeLog log;
  for (gfw::ProbeRecord record : base.records()) {
    record.server_id = log.size() == 0 ? 0 : 3;
    log.add(record);
  }
  return log;
}

TEST(Checkpoint, FleetFrameRoundTripsByteIdentically) {
  const gfw::ShardSummary summary = make_fleet_summary();
  const gfw::ProbeLog log = make_fleet_log();
  EXPECT_TRUE(gfw::shard_has_fleet_data(summary, log));
  // The legacy synthetic shard carries none, so append_shard keeps
  // writing it as a version-1 frame (the golden digest test pins those
  // bytes exactly).
  EXPECT_FALSE(gfw::shard_has_fleet_data(make_summary(), make_log()));

  const Bytes bytes = gfw::serialize_shard_fleet(summary, log);
  const gfw::ShardCheckpoint parsed = gfw::parse_shard_fleet(bytes);
  const Bytes again = gfw::serialize_shard_fleet(parsed.summary, parsed.log);
  EXPECT_EQ(bytes, again);  // serialize ∘ parse == identity on bytes

  ASSERT_EQ(parsed.log.size(), 2u);
  EXPECT_EQ(parsed.log.records()[0].server_id, 0u);
  EXPECT_EQ(parsed.log.records()[1].server_id, 3u);
  ASSERT_EQ(parsed.summary.blocking_history.size(), 2u);
  EXPECT_EQ(parsed.summary.blocking_history[0].region, "beijing");
  EXPECT_EQ(parsed.summary.blocking_history[1].region, "unicom");
  ASSERT_EQ(parsed.summary.servers.size(), 2u);
  EXPECT_EQ(parsed.summary.servers[0].cipher, "chacha20-ietf-poly1305");
  EXPECT_EQ(parsed.summary.servers[1].server_id, 3u);
  EXPECT_EQ(parsed.summary.servers[1].payload_bytes, 11223344u);
}

TEST(Checkpoint, FleetShardsJournalAndRestoreThroughTheFile) {
  const std::string path = temp_path("fleet.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_fleet_summary(), make_fleet_log());  // kind 2
    gfw::ShardSummary legacy = make_summary();
    legacy.shard_index = 0;
    writer.append_shard(legacy, make_log());  // kind 1, same file
  }
  const gfw::Checkpoint loaded = gfw::load_checkpoint(path);
  ASSERT_EQ(loaded.shards.size(), 2u);
  const gfw::ShardCheckpoint& fleet = loaded.shards.at(3);
  ASSERT_EQ(fleet.summary.servers.size(), 2u);
  EXPECT_EQ(fleet.summary.servers[1].region, "unicom");
  EXPECT_EQ(fleet.log.records()[1].server_id, 3u);
  EXPECT_EQ(fleet.summary.blocking_history[0].region, "beijing");
  const gfw::ShardCheckpoint& legacy = loaded.shards.at(0);
  EXPECT_TRUE(legacy.summary.servers.empty());
  EXPECT_EQ(legacy.log.records()[1].server_id, 0u);
  std::remove(path.c_str());
}

gfw::Scenario small_fleet_scenario() {
  gfw::Scenario scenario;
  scenario.traffic = client::TrafficSpec::browsing();
  scenario.duration = net::hours(1);
  scenario.connection_interval = net::seconds(120);
  scenario.classifier_base_rate = 0.25;
  scenario.base_seed = 0xF1EE7CDE;
  gfw::ServerSpec first;
  first.server.impl = probesim::ServerSetup::Impl::kOutline107;
  first.region = "beijing";
  scenario.fleet.push_back(first);
  gfw::ServerSpec second = first;
  second.server.impl = probesim::ServerSetup::Impl::kLibevNew;
  second.server.cipher = "aes-256-gcm";
  second.region = "unicom";
  scenario.fleet.push_back(second);
  return scenario;
}

TEST(Checkpoint, FingerprintCoversFleetShape) {
  const gfw::Scenario fleet = small_fleet_scenario();
  // Deterministic, and sensitive to every fleet dimension: declaring a
  // fleet at all, adding a server, and changing a server's cipher,
  // region, port, or brdgrd flag each move the fingerprint.
  EXPECT_EQ(gfw::scenario_fingerprint(fleet),
            gfw::scenario_fingerprint(small_fleet_scenario()));

  gfw::Scenario legacy = fleet;
  legacy.fleet.clear();
  EXPECT_NE(gfw::scenario_fingerprint(fleet), gfw::scenario_fingerprint(legacy));
  gfw::Scenario one_entry = legacy;
  one_entry.fleet.push_back(one_entry.single_server_spec());
  EXPECT_NE(gfw::scenario_fingerprint(legacy),
            gfw::scenario_fingerprint(one_entry));

  gfw::Scenario grown = fleet;
  grown.fleet.push_back(grown.fleet[0]);
  EXPECT_NE(gfw::scenario_fingerprint(fleet), gfw::scenario_fingerprint(grown));
  gfw::Scenario cipher = fleet;
  cipher.fleet[0].server.cipher = "aes-256-cfb";
  EXPECT_NE(gfw::scenario_fingerprint(fleet), gfw::scenario_fingerprint(cipher));
  gfw::Scenario region = fleet;
  region.fleet[1].region = "shanghai";
  EXPECT_NE(gfw::scenario_fingerprint(fleet), gfw::scenario_fingerprint(region));
  gfw::Scenario port = fleet;
  port.fleet[1].port = 8390;
  EXPECT_NE(gfw::scenario_fingerprint(fleet), gfw::scenario_fingerprint(port));
  gfw::Scenario shielded = fleet;
  shielded.fleet[0].use_brdgrd = true;
  EXPECT_NE(gfw::scenario_fingerprint(fleet),
            gfw::scenario_fingerprint(shielded));
}

TEST(Checkpoint, ResumeRefusesAChangedFleet) {
  const std::string path = temp_path("fleet_resume.ckpt");
  const gfw::Scenario scenario = small_fleet_scenario();
  gfw::ShardedRunnerOptions options(/*shards=*/2, /*threads=*/1);
  options.checkpoint_path = path;
  {
    gfw::ShardedRunner runner(options);
    const gfw::CampaignResult result = runner.run(scenario);
    ASSERT_EQ(result.shards.size(), 2u);
  }
  options.resume = true;
  // Same legacy fields, different fleet: the journal must not be merged
  // into the reshaped campaign.
  gfw::Scenario changed = scenario;
  changed.fleet[1].region = "shanghai";
  EXPECT_THROW(gfw::ShardedRunner(options).run(changed), gfw::CheckpointError);
  // The unchanged fleet resumes cleanly, entirely from the journal.
  const gfw::CampaignResult resumed = gfw::ShardedRunner(options).run(scenario);
  EXPECT_EQ(resumed.shards.size(), 2u);
  ASSERT_EQ(resumed.shards[0].servers.size(), 2u);
  EXPECT_EQ(resumed.shards[0].servers[1].region, "unicom");
  std::remove(path.c_str());
}

// --- Version-2 frames: CRC, failure verdicts, hostile input ------------

// A fully-populated supervision verdict: every field non-default so the
// golden digest pins the whole failure codec.
gfw::ShardFailure make_failure() {
  gfw::ShardFailure f;
  f.shard_index = 6;
  f.seed = 0x0123456789ABCDEFull;
  f.phase = gfw::ShardPhase::kRun;
  f.kind = gfw::FailureKind::kCrash;
  f.what = "worker killed by signal 9 (SIGKILL)";
  f.attempts = 2;
  f.quarantined = true;
  f.nondeterministic = false;
  f.teardown.live_established = 1;
  f.teardown.pending_timers = 4;
  f.teardown.accounting_balanced = false;
  return f;
}

TEST(Checkpoint, FailureFrameRoundTripsByteIdentically) {
  const gfw::ShardFailure failure = make_failure();
  const Bytes bytes = gfw::serialize_failure(failure);
  const gfw::ShardFailure parsed = gfw::parse_failure(bytes);
  EXPECT_EQ(gfw::serialize_failure(parsed), bytes);

  EXPECT_EQ(parsed.shard_index, 6u);
  EXPECT_EQ(parsed.seed, 0x0123456789ABCDEFull);
  EXPECT_EQ(parsed.phase, gfw::ShardPhase::kRun);
  EXPECT_EQ(parsed.kind, gfw::FailureKind::kCrash);
  EXPECT_EQ(parsed.what, failure.what);
  EXPECT_EQ(parsed.attempts, 2);
  EXPECT_TRUE(parsed.quarantined);
  EXPECT_FALSE(parsed.nondeterministic);
  EXPECT_EQ(parsed.teardown.pending_timers, 4u);
  EXPECT_FALSE(parsed.teardown.accounting_balanced);
}

TEST(Checkpoint, GoldenDigestsPinTheVersion2Codecs) {
  // SHA-1 of the synthetic fleet frame and failure frame, captured when
  // format version 2 was frozen. If either fails, the wire format
  // changed: bump kCheckpointVersion and re-pin instead of silently
  // breaking journals written by older workers.
  const Bytes fleet = gfw::serialize_shard_fleet(make_fleet_summary(),
                                                 make_fleet_log());
  const auto fleet_digest = crypto::Sha1::hash(fleet);
  EXPECT_EQ(hex_encode(ByteSpan(fleet_digest.data(), fleet_digest.size())),
            "a2bf4c908c0405beeb6268a8695e643cd0ca8ec8");
  const Bytes failure = gfw::serialize_failure(make_failure());
  const auto failure_digest = crypto::Sha1::hash(failure);
  EXPECT_EQ(hex_encode(ByteSpan(failure_digest.data(), failure_digest.size())),
            "5b39c17e93e63a00cd39edfd58f078ae96eb8330");
}

TEST(Checkpoint, FailureVerdictsJournalAndRestoreThroughTheFile) {
  // Supervision verdicts ride the same journal as results (kind-3
  // frames), so a respawned worker — and the coordinator's merge — see
  // quarantines from before the crash.
  const std::string path = temp_path("verdicts.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_failure(make_failure());
    writer.append_shard(make_summary(), make_log());
    gfw::ShardFailure recovered = make_failure();
    recovered.shard_index = 3;
    recovered.kind = gfw::FailureKind::kException;
    recovered.what = "debug_fail_shard";
    recovered.quarantined = false;
    recovered.nondeterministic = true;
    writer.append_failure(recovered);
  }
  const gfw::Checkpoint loaded = gfw::load_checkpoint(path);
  EXPECT_EQ(loaded.shards.size(), 1u);
  ASSERT_EQ(loaded.failures.size(), 2u);
  EXPECT_EQ(loaded.failures[0].shard_index, 6u);
  EXPECT_TRUE(loaded.failures[0].quarantined);
  EXPECT_EQ(loaded.failures[1].shard_index, 3u);
  EXPECT_EQ(loaded.failures[1].kind, gfw::FailureKind::kException);
  EXPECT_TRUE(loaded.failures[1].nondeterministic);
  std::remove(path.c_str());
}

TEST(Checkpoint, InteriorCorruptionIsACheckpointErrorNotSilentData) {
  // A bit flip in a frame payload must trip the CRC: returning silently
  // corrupted shard data into a bit-identical merge would be far worse
  // than failing the load.
  const std::string path = temp_path("crc.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
    writer.append_failure(make_failure());
  }
  const Bytes pristine = read_file(path);
  Bytes data = pristine;
  data[48] ^= 0x01;  // first payload byte of the first frame
  write_file(path, data);
  try {
    gfw::load_checkpoint(path);
    FAIL() << "corrupt payload loaded without error";
  } catch (const gfw::CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("CRC"), std::string::npos);
  }

  // An implausible frame length is rejected up front, before any
  // allocation in its image.
  data = pristine;
  data[32 + 4 + 5] = 0x7F;  // frame 1's u64 payload size, byte 5: ~87 TiB
  write_file(path, data);
  try {
    gfw::load_checkpoint(path);
    FAIL() << "implausible frame length loaded without error";
  } catch (const gfw::CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("implausible"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, BitFlipCorpusNeverEscapesTheStructuredError) {
  // Hostile-input sweep: flip every bit of a journal holding all three
  // frame kinds, then load. Every variant must either load (flips in
  // torn-tail slack or skipped regions are legal) or throw
  // CheckpointError — never any other exception, UB, or a crash. This is
  // the contract that lets the DistRunner coordinator feed journals
  // found on disk straight into the loader.
  const std::string path = temp_path("bitflip.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
    writer.append_shard(make_fleet_summary(), make_fleet_log());
    writer.append_failure(make_failure());
  }
  const Bytes pristine = read_file(path);
  ASSERT_GT(pristine.size(), 32u);

  std::size_t loads_ok = 0, structured_errors = 0;
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = pristine;
      mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
      write_file(path, mutated);
      try {
        (void)gfw::load_checkpoint(path);
        ++loads_ok;
      } catch (const gfw::CheckpointError&) {
        ++structured_errors;
      }
      // Anything else escaping load_checkpoint aborts the test.
    }
  }
  // Both outcomes must actually occur: flips that only truncate the tail
  // load, flips in CRCs or the header throw.
  EXPECT_GT(loads_ok, 0u);
  EXPECT_GT(structured_errors, 0u);

  // Truncation sweep: every prefix of the file loads or throws, too.
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    write_file(path, ByteSpan(pristine.data(), len));
    try {
      (void)gfw::load_checkpoint(path);
    } catch (const gfw::CheckpointError&) {
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, Version1FilesAreRejectedWithAClearMessage) {
  // Version 2 added frame CRCs; a v1 file's frames would all fail the
  // CRC check anyway, so the loader refuses up front with a message
  // naming both versions instead of reporting phantom corruption.
  const std::string path = temp_path("v1.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
  }
  Bytes data = read_file(path);
  data[8] = 1;  // version field (little-endian u32 at offset 8)
  write_file(path, data);
  try {
    gfw::load_checkpoint(path);
    FAIL() << "version-1 file loaded as version 2";
  } catch (const gfw::CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

// --- Resource-governance frames (kinds 3 with kResource, 4, 5) --------

// A fully-populated resource verdict: every counter nonzero and two shed
// records (one with a region, one without) so field drops move the bytes.
gfw::ShardResources make_resources() {
  gfw::ShardResources r;
  r.probes_shed = 7;
  r.probes_deferred = 11;
  r.queue_overflow_drops = 23;
  r.peak_metered_bytes = 1 << 20;
  r.acquisitions = 4242;
  for (std::size_t kind = 0; kind < net::kResourceKindCount; ++kind) {
    r.peak_units[kind] = 100 + kind;
  }
  gfw::ShedRecord beijing;
  beijing.server_id = 3;
  beijing.region = "beijing";
  beijing.count = 5;
  r.sheds.push_back(beijing);
  gfw::ShedRecord bare;
  bare.server_id = 0;
  bare.count = 2;
  r.sheds.push_back(bare);
  return r;
}

TEST(Checkpoint, ResourceFailureKindRoundTripsThroughTheVerdictFrame) {
  // A budget breach is journaled as an ordinary kind-3 verdict with the
  // new kResource kind — old journals' kinds are untouched, so the
  // failure golden digest above still pins the codec.
  gfw::ShardFailure failure = make_failure();
  failure.kind = gfw::FailureKind::kResource;
  failure.what = "resource budget exhausted: payload bytes";
  const Bytes bytes = gfw::serialize_failure(failure);
  const gfw::ShardFailure parsed = gfw::parse_failure(bytes);
  EXPECT_EQ(gfw::serialize_failure(parsed), bytes);
  EXPECT_EQ(parsed.kind, gfw::FailureKind::kResource);
  EXPECT_EQ(parsed.what, failure.what);

  const std::string path = temp_path("resource_failure.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_failure(failure);
  }
  const gfw::Checkpoint loaded = gfw::load_checkpoint(path);
  ASSERT_EQ(loaded.failures.size(), 1u);
  EXPECT_EQ(loaded.failures[0].kind, gfw::FailureKind::kResource);
  std::remove(path.c_str());
}

TEST(Checkpoint, UnknownFailureKindIsAStructuredRejection) {
  // A journal from a future writer with a failure kind this reader does
  // not know must fail loudly (the verdict drives retry/quarantine
  // decisions — guessing would be worse than refusing).
  Bytes bytes = gfw::serialize_failure(make_failure());
  // Layout: u32 shard_index, u64 seed, u8 phase, u8 kind.
  const std::size_t kind_offset = 4 + 8 + 1;
  bytes[kind_offset] =
      static_cast<std::uint8_t>(gfw::FailureKind::kResource) + 1;
  try {
    gfw::parse_failure(bytes);
    FAIL() << "unknown failure kind parsed without error";
  } catch (const gfw::CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown kind"),
              std::string::npos);
  }
}

TEST(Checkpoint, ResourceFrameRoundTripsByteIdentically) {
  const gfw::ShardResources resources = make_resources();
  EXPECT_TRUE(resources.any());
  EXPECT_FALSE(gfw::ShardResources{}.any());

  const Bytes bytes = gfw::serialize_resources(9, resources);
  const gfw::ResourceFrame parsed = gfw::parse_resources(bytes);
  EXPECT_EQ(gfw::serialize_resources(parsed.shard_index, parsed.resources),
            bytes);  // serialize ∘ parse == identity on bytes

  EXPECT_EQ(parsed.shard_index, 9u);
  EXPECT_EQ(parsed.resources.probes_shed, 7u);
  EXPECT_EQ(parsed.resources.probes_deferred, 11u);
  EXPECT_EQ(parsed.resources.queue_overflow_drops, 23u);
  EXPECT_EQ(parsed.resources.peak_metered_bytes, 1u << 20);
  EXPECT_EQ(parsed.resources.acquisitions, 4242u);
  EXPECT_EQ(parsed.resources.peak_units[net::kResourceKindCount - 1],
            100u + net::kResourceKindCount - 1);
  ASSERT_EQ(parsed.resources.sheds.size(), 2u);
  EXPECT_EQ(parsed.resources.sheds[0].region, "beijing");
  EXPECT_EQ(parsed.resources.sheds[0].count, 5u);
  EXPECT_EQ(parsed.resources.sheds[1].server_id, 0u);
  EXPECT_TRUE(parsed.resources.sheds[1].region.empty());
}

TEST(Checkpoint, WorkerIoFrameRoundTripsByteIdentically) {
  gfw::WorkerIoStats io;
  io.worker_id = 2;
  io.heartbeats_dropped = 3;
  io.heartbeat_retries = 19;
  io.journal_retries = 1;
  EXPECT_TRUE(io.any());
  EXPECT_FALSE(gfw::WorkerIoStats{}.any());

  const Bytes bytes = gfw::serialize_worker_io(io);
  const gfw::WorkerIoStats parsed = gfw::parse_worker_io(bytes);
  EXPECT_EQ(gfw::serialize_worker_io(parsed), bytes);
  EXPECT_EQ(parsed.worker_id, 2u);
  EXPECT_EQ(parsed.heartbeats_dropped, 3u);
  EXPECT_EQ(parsed.heartbeat_retries, 19u);
  EXPECT_EQ(parsed.journal_retries, 1u);
}

TEST(Checkpoint, ResourceVerdictsJournalAndReattachThroughTheFile) {
  // A shard that shed probes under an armed governor gets a kind-4 frame
  // right after its shard frame; load re-attaches it. A shard with a
  // zero verdict writes no extra frame at all, so zero-budget journals
  // stay byte-identical to pre-governor ones.
  const std::string path_armed = temp_path("resources_armed.ckpt");
  const std::string path_zero_a = temp_path("resources_zero_a.ckpt");
  const std::string path_zero_b = temp_path("resources_zero_b.ckpt");
  {
    gfw::CheckpointWriter writer(path_armed, make_header(), /*append=*/false);
    gfw::ShardSummary shed = make_summary();
    shed.resources = make_resources();
    writer.append_shard(shed, make_log());
    gfw::ShardSummary quiet = make_summary();
    quiet.shard_index = 0;
    writer.append_shard(quiet, make_log());  // no kind-4 frame
    writer.append_worker_io(gfw::WorkerIoStats{1, 0, 4, 1});
  }
  const gfw::Checkpoint loaded = gfw::load_checkpoint(path_armed);
  ASSERT_EQ(loaded.shards.size(), 2u);
  const gfw::ShardResources& attached = loaded.shards.at(3).summary.resources;
  EXPECT_TRUE(attached.any());
  EXPECT_EQ(attached.probes_shed, 7u);
  ASSERT_EQ(attached.sheds.size(), 2u);
  EXPECT_EQ(attached.sheds[0].region, "beijing");
  EXPECT_FALSE(loaded.shards.at(0).summary.resources.any());
  ASSERT_EQ(loaded.worker_io.size(), 1u);
  EXPECT_EQ(loaded.worker_io[0].heartbeat_retries, 4u);

  // Inertness at the byte level: writing the same shard with and without
  // a (zero) resources field produces identical files.
  {
    gfw::CheckpointWriter writer(path_zero_a, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
  }
  {
    gfw::CheckpointWriter writer(path_zero_b, make_header(), /*append=*/false);
    gfw::ShardSummary zeroed = make_summary();
    zeroed.resources = gfw::ShardResources{};
    writer.append_shard(zeroed, make_log());
  }
  EXPECT_EQ(read_file(path_zero_a), read_file(path_zero_b));
  std::remove(path_armed.c_str());
  std::remove(path_zero_a.c_str());
  std::remove(path_zero_b.c_str());
}

TEST(Checkpoint, ResourceBitFlipCorpusNeverEscapesTheStructuredError) {
  // Same hostile-input contract as the three original frame kinds, now
  // over a journal that also carries kind-4 and kind-5 frames and a
  // kResource verdict.
  const std::string path = temp_path("resource_bitflip.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    gfw::ShardSummary shed = make_summary();
    shed.resources = make_resources();
    writer.append_shard(shed, make_log());
    gfw::ShardFailure breach = make_failure();
    breach.kind = gfw::FailureKind::kResource;
    writer.append_failure(breach);
    writer.append_worker_io(gfw::WorkerIoStats{0, 1, 2, 3});
  }
  const Bytes pristine = read_file(path);
  ASSERT_GT(pristine.size(), 32u);

  std::size_t loads_ok = 0, structured_errors = 0;
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = pristine;
      mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
      write_file(path, mutated);
      try {
        (void)gfw::load_checkpoint(path);
        ++loads_ok;
      } catch (const gfw::CheckpointError&) {
        ++structured_errors;
      }
    }
  }
  EXPECT_GT(loads_ok, 0u);
  EXPECT_GT(structured_errors, 0u);

  for (std::size_t len = 0; len < pristine.size(); ++len) {
    write_file(path, ByteSpan(pristine.data(), len));
    try {
      (void)gfw::load_checkpoint(path);
    } catch (const gfw::CheckpointError&) {
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintCoversResourceBudgets) {
  // Arming the governor reshapes the campaign, so a resumed journal from
  // an unarmed run must not merge into a budgeted one (and vice versa).
  // Disarmed budgets mix nothing: old fingerprints are preserved.
  gfw::Scenario base = small_fleet_scenario();
  gfw::Scenario zeroed = base;
  zeroed.resources = gfw::Scenario::ResourceConfig{};
  EXPECT_EQ(gfw::scenario_fingerprint(base), gfw::scenario_fingerprint(zeroed));

  gfw::Scenario budgeted = base;
  budgeted.resources.limits.total_bytes = 1 << 20;
  EXPECT_NE(gfw::scenario_fingerprint(base),
            gfw::scenario_fingerprint(budgeted));
  gfw::Scenario capped = base;
  capped.resources.probe_queue_cap = 4;
  EXPECT_NE(gfw::scenario_fingerprint(base), gfw::scenario_fingerprint(capped));
  EXPECT_NE(gfw::scenario_fingerprint(budgeted),
            gfw::scenario_fingerprint(capped));
  gfw::Scenario fail_at = budgeted;
  fail_at.resources.limits.fail_at_acquisition = 1000;
  EXPECT_NE(gfw::scenario_fingerprint(budgeted),
            gfw::scenario_fingerprint(fail_at));
}

TEST(Checkpoint, AppendingAForeignCampaignIsRejected) {
  const std::string path = temp_path("foreign.ckpt");
  {
    gfw::CheckpointWriter writer(path, make_header(), /*append=*/false);
    writer.append_shard(make_summary(), make_log());
  }
  gfw::CheckpointHeader other = make_header();
  other.base_seed ^= 1;
  EXPECT_THROW(gfw::CheckpointWriter(path, other, /*append=*/true),
               gfw::CheckpointError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gfwsim
