// Integration tests of the full campaign harness.
#include <gtest/gtest.h>

#include "gfw/world.h"

namespace gfwsim::gfw {
namespace {

Scenario small_campaign() {
  Scenario config;
  config.server.impl = probesim::ServerSetup::Impl::kOutline107;
  config.server.cipher = "chacha20-ietf-poly1305";
  config.duration = net::hours(24);
  config.connection_interval = net::seconds(120);
  config.classifier_base_rate = 0.3;
  return config;
}

TEST(Campaign, ShadowsocksTrafficDrawsProbes) {
  World campaign(small_campaign(),
                    std::make_unique<client::BrowsingTraffic>(
                        client::BrowsingTraffic::paper_sites()),
                    0xAA01);
  campaign.run();

  EXPECT_GT(campaign.connections_launched(), 400u);
  EXPECT_GT(campaign.log().size(), 10u);
  // No proactive scanning: the idle control host is never contacted.
  EXPECT_EQ(campaign.control_host_contacts(), 0u);
}

TEST(Campaign, OutlineServersGetStage2ProbeTypes) {
  World campaign(small_campaign(),
                    std::make_unique<client::BrowsingTraffic>(
                        client::BrowsingTraffic::paper_sites()),
                    0xAA02);
  campaign.run();

  // Outline <= v1.0.8 answers R1 with data -> stage 2 unlocks (this is
  // why only the paper's OutlineVPN experiment saw R3/R4/R5).
  int stage2 = 0;
  for (const auto& record : campaign.log().records()) {
    stage2 += record.type == probesim::ProbeType::kR3 ||
              record.type == probesim::ProbeType::kR4 ||
              record.type == probesim::ProbeType::kNR1;
  }
  EXPECT_GT(stage2, 0);
}

TEST(Campaign, LibevServersStayInStage1) {
  Scenario config = small_campaign();
  config.server.impl = probesim::ServerSetup::Impl::kLibevNew;
  config.server.cipher = "aes-256-gcm";
  World campaign(config,
                    std::make_unique<client::BrowsingTraffic>(
                        client::BrowsingTraffic::paper_sites()),
                    0xAA03);
  campaign.run();

  ASSERT_GT(campaign.log().size(), 5u);
  for (const auto& record : campaign.log().records()) {
    EXPECT_TRUE(record.type == probesim::ProbeType::kR1 ||
                record.type == probesim::ProbeType::kR2 ||
                record.type == probesim::ProbeType::kNR2);
  }
}

TEST(Campaign, RawRandomTrafficAlsoTriggersProbes) {
  // The Table 4 insight: no real Shadowsocks needed; high-entropy random
  // payloads of the right lengths draw probes to a bare TCP sink.
  Scenario config = small_campaign();
  config.raw_traffic = true;
  World campaign(config, std::make_unique<client::RandomDataTraffic>(
                                client::RandomDataTraffic::exp1()),
                    0xAA04);
  campaign.run();
  EXPECT_GT(campaign.log().size(), 5u);
}

TEST(Campaign, LowEntropyTrafficDrawsFewerProbes) {
  // Exp 1 vs Exp 2 of Table 4.
  Scenario config = small_campaign();
  config.raw_traffic = true;

  World high_entropy(config, std::make_unique<client::RandomDataTraffic>(
                                    client::RandomDataTraffic::exp1()),
                        0xAA05);
  high_entropy.run();

  World low_entropy(config, std::make_unique<client::RandomDataTraffic>(
                                   client::RandomDataTraffic::exp2()),
                       0xAA05);
  low_entropy.run();

  EXPECT_GT(high_entropy.log().size(), 2 * low_entropy.log().size());
}

double campaign_probe_ratio(std::size_t guarded, std::size_t unguarded) {
  return unguarded == 0 ? 1.0
                        : static_cast<double>(guarded) / static_cast<double>(unguarded);
}

TEST(Campaign, BrdgrdSuppressesProbing) {
  // Figure 11 in miniature: with brdgrd clamping the first flight, the
  // classifier sees tiny first packets and probing collapses.
  Scenario config = small_campaign();
  config.use_brdgrd = true;
  World guarded(config,
                   std::make_unique<client::BrowsingTraffic>(
                       client::BrowsingTraffic::paper_sites()),
                   0xAA06);
  guarded.run();

  Scenario vanilla = small_campaign();
  World unguarded(vanilla,
                     std::make_unique<client::BrowsingTraffic>(
                         client::BrowsingTraffic::paper_sites()),
                     0xAA06);
  unguarded.run();

  EXPECT_GT(guarded.brdgrd()->connections_clamped(), 100u);
  EXPECT_LT(campaign_probe_ratio(guarded.log().size(), unguarded.log().size()), 0.15);
}

TEST(Campaign, ServerInsideChinaIsProbedToo) {
  // Section 4.2: outside-to-inside connections trigger probing as well.
  Scenario config = small_campaign();
  config.server_inside_china = true;
  World campaign(config,
                    std::make_unique<client::BrowsingTraffic>(
                        client::BrowsingTraffic::paper_sites()),
                    0xAA07);
  campaign.run();
  EXPECT_GT(campaign.log().size(), 5u);
}

}  // namespace
}  // namespace gfwsim::gfw
