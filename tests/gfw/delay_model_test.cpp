#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "gfw/delay_model.h"

namespace gfwsim::gfw {
namespace {

TEST(ReplayDelayModel, MatchesFigure7Quantiles) {
  ReplayDelayModel model;
  crypto::Rng rng(71);
  analysis::Cdf cdf;
  for (int i = 0; i < 50000; ++i) cdf.add(net::to_seconds(model.sample(rng)));

  // Figure 7: >20% within 1 s, >50% within 1 min, >75% within 15 min.
  EXPECT_GT(cdf.fraction_below(1.0), 0.20);
  EXPECT_LT(cdf.fraction_below(1.0), 0.32);
  EXPECT_GT(cdf.fraction_below(60.0), 0.50);
  EXPECT_LT(cdf.fraction_below(60.0), 0.65);
  EXPECT_GT(cdf.fraction_below(900.0), 0.75);
  EXPECT_LT(cdf.fraction_below(900.0), 0.88);
}

TEST(ReplayDelayModel, RespectsObservedBounds) {
  ReplayDelayModel model;
  crypto::Rng rng(72);
  double min_seen = 1e12, max_seen = 0;
  for (int i = 0; i < 50000; ++i) {
    const double s = net::to_seconds(model.sample(rng));
    min_seen = std::min(min_seen, s);
    max_seen = std::max(max_seen, s);
  }
  EXPECT_GE(min_seen, ReplayDelayModel::kMinDelaySeconds);
  EXPECT_LE(max_seen, ReplayDelayModel::kMaxDelaySeconds);
  // The tail must actually be exercised: delays beyond 10 hours occur.
  EXPECT_GT(max_seen, 36000.0);
}

TEST(ReplayDelayModel, HeavyTailSpansOrdersOfMagnitude) {
  ReplayDelayModel model;
  crypto::Rng rng(73);
  analysis::Cdf cdf;
  for (int i = 0; i < 20000; ++i) cdf.add(net::to_seconds(model.sample(rng)));
  // Max observed in the paper: 569.55 hours. Our p99.9 should land within
  // the same order of magnitude.
  EXPECT_GT(cdf.quantile(0.999), 1e5);
}

}  // namespace
}  // namespace gfwsim::gfw
