// One-time auth (OTA): round trips, tamper detection, and the
// unauthenticated-length-field oracle that got it deprecated (sec. 2.1).
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "proxy/ota.h"

namespace gfwsim::proxy {
namespace {

struct OtaFixture : ::testing::Test {
  const CipherSpec& spec = *find_cipher("aes-256-ctr");
  Bytes key = stream_master_key(spec, "pw");
  crypto::Rng rng{0x07A};
  Bytes iv = rng.bytes(16);
  TargetSpec target = TargetSpec::hostname("example.com", 443);

  // Decrypt-side plumbing: the server first strips IV and decrypts, then
  // hands plaintext to the OtaReader.
  Bytes decrypt_after_iv(ByteSpan wire) {
    StreamSession dec(spec, key, iv, StreamSession::Direction::kDecrypt);
    return dec.process(wire.subspan(16));
  }
};

TEST_F(OtaFixture, HeaderAndChunksRoundTrip) {
  OtaWriter writer(spec, key, iv);
  Bytes wire = writer.first_packet(target, to_bytes("hello"));
  append(wire, writer.chunk(to_bytes(" world")));

  const Bytes plain = decrypt_after_iv(wire);
  OtaReader reader(spec, key, iv, {});
  Bytes out;
  auto status = reader.feed(plain, out);
  EXPECT_TRUE(status == OtaReader::Status::kHeaderOk || status == OtaReader::Status::kData);
  // Feed nothing more; chunks decoded during the same feed or next.
  reader.feed({}, out);
  EXPECT_EQ(reader.target(), target);
  EXPECT_EQ(to_string(out), "hello world");
}

TEST_F(OtaFixture, HeaderFlagIsSet) {
  OtaWriter writer(spec, key, iv);
  const Bytes wire = writer.first_packet(target, {});
  const Bytes plain = decrypt_after_iv(wire);
  EXPECT_EQ(plain[0] & kOtaFlag, kOtaFlag);
  EXPECT_EQ(plain[0] & 0x0f, 0x03);  // hostname type underneath
}

TEST_F(OtaFixture, TamperedHeaderFailsAuthentication) {
  OtaWriter writer(spec, key, iv);
  Bytes wire = writer.first_packet(target, {});
  wire[16 + 2] ^= 0x01;  // flip a hostname byte (ciphertext)

  const Bytes plain = decrypt_after_iv(wire);
  OtaReader reader(spec, key, iv, {});
  Bytes out;
  EXPECT_EQ(reader.feed(plain, out), OtaReader::Status::kAuthError);
}

TEST_F(OtaFixture, TamperedChunkDataFailsAuthentication) {
  OtaWriter writer(spec, key, iv);
  Bytes wire = writer.first_packet(target, to_bytes("payload"));
  wire.back() ^= 0x01;  // flip the last payload byte

  const Bytes plain = decrypt_after_iv(wire);
  OtaReader reader(spec, key, iv, {});
  Bytes out;
  reader.feed(plain, out);
  EXPECT_EQ(reader.feed({}, out), OtaReader::Status::kAuthError);
}

TEST_F(OtaFixture, TamperedLengthFieldStallsInsteadOfFailing) {
  // THE design flaw (section 2.1): the length prefix carries no MAC. A
  // prober that inflates it sees the server wait for phantom bytes — a
  // timing/behaviour oracle — rather than reject immediately.
  OtaWriter writer(spec, key, iv);
  Bytes wire = writer.first_packet(target, {});
  Bytes chunk_wire = writer.chunk(to_bytes("payload"));
  // The 2-byte length is the first plaintext of the chunk; flip the high
  // byte so length jumps from 7 to 263.
  chunk_wire[0] ^= 0x01;
  append(wire, chunk_wire);

  const Bytes plain = decrypt_after_iv(wire);
  OtaReader reader(spec, key, iv, {});
  Bytes out;
  reader.feed(plain, out);
  const auto status = reader.feed({}, out);
  EXPECT_EQ(status, OtaReader::Status::kNeedMore);  // stalled, NOT kAuthError
  EXPECT_TRUE(out.empty());
  EXPECT_GT(reader.pending_need(), 200u);  // waiting for phantom bytes
}

TEST_F(OtaFixture, WrongIvKeyFailsCleanly) {
  OtaWriter writer(spec, key, iv);
  const Bytes wire = writer.first_packet(target, {});
  const Bytes plain = decrypt_after_iv(wire);

  const Bytes other_key = stream_master_key(spec, "other");
  OtaReader reader(spec, other_key, iv, {});
  Bytes out;
  EXPECT_EQ(reader.feed(plain, out), OtaReader::Status::kAuthError);
}

TEST_F(OtaFixture, ChunkIndexPreventsReordering) {
  OtaWriter writer(spec, key, iv);
  Bytes header_wire = writer.first_packet(target, {});
  const Bytes chunk1 = writer.chunk(to_bytes("first"));
  const Bytes chunk2 = writer.chunk(to_bytes("later"));

  // Deliver chunk2 before chunk1: its tag was computed with index 1, but
  // the reader expects index 0 -> authentication failure.
  StreamSession dec(spec, key, iv, StreamSession::Direction::kDecrypt);
  Bytes plain = dec.process(ByteSpan(header_wire.data() + 16, header_wire.size() - 16));
  OtaReader reader(spec, key, iv, {});
  Bytes out;
  reader.feed(plain, out);

  // Decrypt chunks out of order at the right keystream offsets is not
  // possible with a stream cipher; simulate the reorder at plaintext
  // level instead.
  StreamSession dec2(spec, key, iv, StreamSession::Direction::kDecrypt);
  dec2.process(ByteSpan(header_wire.data() + 16, header_wire.size() - 16));
  const Bytes plain1 = dec2.process(chunk1);
  const Bytes plain2 = dec2.process(chunk2);
  EXPECT_EQ(reader.feed(plain2, out), OtaReader::Status::kAuthError);
}

TEST_F(OtaFixture, RejectsAeadSpec) {
  const auto& aead = *find_cipher("aes-256-gcm");
  const Bytes aead_key(32, 1), salt(32, 2);
  EXPECT_THROW(OtaWriter(aead, aead_key, salt), std::invalid_argument);
  EXPECT_THROW(OtaReader(aead, aead_key, salt, {}), std::invalid_argument);
}

TEST_F(OtaFixture, ByteAtATimeFeeding) {
  OtaWriter writer(spec, key, iv);
  Bytes wire = writer.first_packet(target, to_bytes("drip-fed data"));
  const Bytes plain = decrypt_after_iv(wire);

  OtaReader reader(spec, key, iv, {});
  Bytes out;
  for (const std::uint8_t b : plain) {
    const auto status = reader.feed(ByteSpan(&b, 1), out);
    ASSERT_NE(status, OtaReader::Status::kAuthError);
  }
  EXPECT_EQ(to_string(out), "drip-fed data");
  EXPECT_EQ(reader.target(), target);
}

}  // namespace
}  // namespace gfwsim::proxy
