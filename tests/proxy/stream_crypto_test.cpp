#include <gtest/gtest.h>

#include "crypto/md5.h"
#include "crypto/rc4.h"
#include "crypto/rng.h"
#include "proxy/stream_crypto.h"

namespace gfwsim::proxy {
namespace {

class StreamCipherSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamCipherSweep, RoundTripAllMethods) {
  const auto* spec = find_cipher(GetParam());
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->kind, CipherKind::kStream);

  crypto::Rng rng(101);
  const Bytes key = stream_master_key(*spec, "the shared password");
  ASSERT_EQ(key.size(), spec->key_len);
  const Bytes iv = rng.bytes(spec->iv_len);
  const Bytes msg = rng.bytes(333);

  StreamSession enc(*spec, key, iv, StreamSession::Direction::kEncrypt);
  StreamSession dec(*spec, key, iv, StreamSession::Direction::kDecrypt);
  const Bytes ct = enc.process(msg);
  EXPECT_EQ(ct.size(), msg.size());
  EXPECT_NE(ct, msg);
  EXPECT_EQ(dec.process(ct), msg);
}

TEST_P(StreamCipherSweep, StatefulAcrossCalls) {
  const auto* spec = find_cipher(GetParam());
  crypto::Rng rng(102);
  const Bytes key = stream_master_key(*spec, "pw");
  const Bytes iv = rng.bytes(spec->iv_len);
  const Bytes msg = rng.bytes(100);

  StreamSession whole_enc(*spec, key, iv, StreamSession::Direction::kEncrypt);
  const Bytes expected = whole_enc.process(msg);

  StreamSession chunked_enc(*spec, key, iv, StreamSession::Direction::kEncrypt);
  Bytes got;
  append(got, chunked_enc.process(ByteSpan(msg.data(), 33)));
  append(got, chunked_enc.process(ByteSpan(msg.data() + 33, 67)));
  EXPECT_EQ(got, expected);
}

TEST_P(StreamCipherSweep, DifferentIvsDifferentKeystreams) {
  const auto* spec = find_cipher(GetParam());
  crypto::Rng rng(103);
  const Bytes key = stream_master_key(*spec, "pw");
  const Bytes iv_a = rng.bytes(spec->iv_len);
  const Bytes iv_b = rng.bytes(spec->iv_len);
  const Bytes msg(64, 0x00);

  StreamSession a(*spec, key, iv_a, StreamSession::Direction::kEncrypt);
  StreamSession b(*spec, key, iv_b, StreamSession::Direction::kEncrypt);
  EXPECT_NE(a.process(msg), b.process(msg));
}

INSTANTIATE_TEST_SUITE_P(AllStreamCiphers, StreamCipherSweep,
                         ::testing::Values("rc4-md5", "aes-128-ctr", "aes-192-ctr",
                                           "aes-256-ctr", "aes-128-cfb", "aes-192-cfb",
                                           "aes-256-cfb", "chacha20-ietf", "chacha20"));

TEST(StreamSession, Rc4Md5SessionKeyIsMd5OfKeyAndIv) {
  const auto* spec = find_cipher("rc4-md5");
  crypto::Rng rng(104);
  const Bytes key = stream_master_key(*spec, "pw");
  const Bytes iv = rng.bytes(16);
  const Bytes msg = to_bytes("hello world");

  StreamSession session(*spec, key, iv, StreamSession::Direction::kEncrypt);
  const Bytes got = session.process(msg);

  crypto::Rc4 reference(crypto::md5(concat(key, iv)));
  EXPECT_EQ(got, reference.transform(msg));
}

TEST(StreamSession, RejectsMismatchedParameters) {
  const auto* stream_spec = find_cipher("aes-256-ctr");
  const auto* aead_spec = find_cipher("aes-256-gcm");
  const Bytes key(32, 1), short_key(16, 1), iv(16, 2), short_iv(8, 2);
  using D = StreamSession::Direction;
  EXPECT_THROW(StreamSession(*stream_spec, short_key, iv, D::kEncrypt), std::invalid_argument);
  EXPECT_THROW(StreamSession(*stream_spec, key, short_iv, D::kEncrypt), std::invalid_argument);
  EXPECT_THROW(StreamSession(*aead_spec, key, iv, D::kEncrypt), std::invalid_argument);
}

TEST(StreamSession, MalleabilityOfCtr) {
  // The core stream-cipher weakness: XOR into ciphertext XORs into
  // plaintext at the same offset. This is what byte-changed replay probes
  // (R2-R5) rely on to turn one recorded connection into many variants.
  const auto* spec = find_cipher("aes-256-ctr");
  crypto::Rng rng(105);
  const Bytes key = stream_master_key(*spec, "pw");
  const Bytes iv = rng.bytes(16);
  const Bytes msg = to_bytes("\x01\x08\x08\x08\x08\x00\x50 payload");

  StreamSession enc(*spec, key, iv, StreamSession::Direction::kEncrypt);
  Bytes ct = enc.process(msg);
  ct[0] ^= 0x01 ^ 0x03;  // rewrite address type 0x01 -> 0x03

  StreamSession dec(*spec, key, iv, StreamSession::Direction::kDecrypt);
  const Bytes tampered = dec.process(ct);
  EXPECT_EQ(tampered[0], 0x03);
  EXPECT_EQ(Bytes(tampered.begin() + 1, tampered.end()),
            Bytes(msg.begin() + 1, msg.end()));
}

TEST(StreamMasterKey, MatchesEvpBytesToKeyLength) {
  for (const auto* spec : all_ciphers()) {
    if (spec->kind != CipherKind::kStream) continue;
    EXPECT_EQ(stream_master_key(*spec, "x").size(), spec->key_len) << spec->name;
  }
}

}  // namespace
}  // namespace gfwsim::proxy
