#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "proxy/cipher.h"
#include "proxy/target.h"

namespace gfwsim::proxy {
namespace {

TEST(CipherRegistry, KnownMethodsResolve) {
  const auto* rc4 = find_cipher("rc4-md5");
  ASSERT_NE(rc4, nullptr);
  EXPECT_EQ(rc4->kind, CipherKind::kStream);
  EXPECT_EQ(rc4->key_len, 16u);
  EXPECT_EQ(rc4->iv_len, 16u);

  const auto* chacha = find_cipher("chacha20-ietf-poly1305");
  ASSERT_NE(chacha, nullptr);
  EXPECT_EQ(chacha->kind, CipherKind::kAead);
  EXPECT_EQ(chacha->key_len, 32u);
  EXPECT_EQ(chacha->iv_len, 32u);
  EXPECT_EQ(chacha->tag_len(), 16u);

  EXPECT_EQ(find_cipher("not-a-cipher"), nullptr);
}

TEST(CipherRegistry, PaperIvLengthCoverage) {
  // The paper says stream IVs may be 8, 12, or 16 bytes and AEAD salts
  // 16, 24, or 32 (section 2); the registry must cover all six classes.
  bool iv8 = false, iv12 = false, iv16 = false;
  bool salt16 = false, salt24 = false, salt32 = false;
  for (const auto* spec : all_ciphers()) {
    if (spec->kind == CipherKind::kStream) {
      iv8 |= spec->iv_len == 8;
      iv12 |= spec->iv_len == 12;
      iv16 |= spec->iv_len == 16;
    } else {
      salt16 |= spec->iv_len == 16;
      salt24 |= spec->iv_len == 24;
      salt32 |= spec->iv_len == 32;
    }
  }
  EXPECT_TRUE(iv8 && iv12 && iv16);
  EXPECT_TRUE(salt16 && salt24 && salt32);
}

TEST(CipherRegistry, OnlyChaCha20IetfHas12ByteIv) {
  // Paper section 5.2.2: inferring a 12-byte IV identifies the method.
  for (const auto* spec : all_ciphers()) {
    if (spec->kind == CipherKind::kStream && spec->iv_len == 12) {
      EXPECT_EQ(spec->name, "chacha20-ietf");
    }
  }
}

TEST(TargetSpec, EncodeIpv4) {
  const auto spec = TargetSpec::ipv4(net::Ipv4(93, 184, 216, 34), 443);
  const Bytes wire = encode_target(spec);
  ASSERT_EQ(wire.size(), 7u);
  EXPECT_EQ(wire[0], 0x01);
  EXPECT_EQ(hex_encode(ByteSpan(wire.data() + 1, 4)), "5db8d822");
  EXPECT_EQ(wire[5], 0x01);  // 443 = 0x01bb
  EXPECT_EQ(wire[6], 0xbb);
}

TEST(TargetSpec, EncodeHostname) {
  const auto spec = TargetSpec::hostname("example.com", 80);
  const Bytes wire = encode_target(spec);
  ASSERT_EQ(wire.size(), 1u + 1 + 11 + 2);
  EXPECT_EQ(wire[0], 0x03);
  EXPECT_EQ(wire[1], 11);
  EXPECT_EQ(to_string(ByteSpan(wire.data() + 2, 11)), "example.com");
}

TEST(TargetSpec, EncodeParseRoundTrip) {
  const std::vector<TargetSpec> specs = {
      TargetSpec::ipv4(net::Ipv4(1, 2, 3, 4), 8080),
      TargetSpec::hostname("www.wikipedia.org", 443),
      TargetSpec::hostname("", 1),  // degenerate but legal
      TargetSpec::ipv6({0x20, 0x01, 0x0d, 0xb8}, 53),
  };
  for (const auto& spec : specs) {
    const Bytes wire = encode_target(spec);
    const auto parsed = parse_target(wire, /*mask_atyp=*/false);
    ASSERT_EQ(parsed.status, ParseStatus::kOk) << spec.to_string();
    EXPECT_EQ(parsed.spec, spec);
    EXPECT_EQ(parsed.consumed, wire.size());
  }
}

TEST(TargetSpec, ParseDetectsTrailingData) {
  Bytes wire = encode_target(TargetSpec::ipv4(net::Ipv4(1, 1, 1, 1), 53));
  append(wire, to_bytes("GET / HTTP/1.1"));
  const auto parsed = parse_target(wire, false);
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_EQ(parsed.consumed, 7u);
}

TEST(TargetSpec, IncompleteSpecsNeedMore) {
  const Bytes ipv4_partial = {0x01, 10, 0, 0};
  EXPECT_EQ(parse_target(ipv4_partial, false).status, ParseStatus::kNeedMore);

  const Bytes host_partial = {0x03, 20, 'a', 'b'};
  EXPECT_EQ(parse_target(host_partial, false).status, ParseStatus::kNeedMore);

  const Bytes ipv6_partial = {0x04, 0, 0};
  EXPECT_EQ(parse_target(ipv6_partial, false).status, ParseStatus::kNeedMore);

  EXPECT_EQ(parse_target({}, false).status, ParseStatus::kNeedMore);
}

TEST(TargetSpec, InvalidAddressType) {
  const Bytes bad = {0x05, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(parse_target(bad, false).status, ParseStatus::kInvalid);
  const Bytes zero = {0x00, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(parse_target(zero, false).status, ParseStatus::kInvalid);
}

TEST(TargetSpec, MaskingAcceptsHighNibble) {
  // 0x11 & 0x0F == 0x01 -> valid IPv4 under the ss-libev mask, invalid
  // under strict parsing.
  const Bytes masked_ipv4 = {0x11, 8, 8, 8, 8, 0, 53};
  EXPECT_EQ(parse_target(masked_ipv4, true).status, ParseStatus::kOk);
  EXPECT_EQ(parse_target(masked_ipv4, false).status, ParseStatus::kInvalid);
}

TEST(TargetSpec, RandomByteValidityProbability) {
  // Paper section 5.2.1: random first byte is valid with probability 3/16
  // when masked, 3/256 when not. Exhaustively check all 256 values.
  int valid_masked = 0, valid_strict = 0;
  for (int b = 0; b < 256; ++b) {
    Bytes data(32, 0x00);
    data[0] = static_cast<std::uint8_t>(b);
    if (parse_target(data, true).status != ParseStatus::kInvalid) ++valid_masked;
    if (parse_target(data, false).status != ParseStatus::kInvalid) ++valid_strict;
  }
  EXPECT_EQ(valid_masked, 48);  // 3/16 of 256
  EXPECT_EQ(valid_strict, 3);   // 3/256
}

}  // namespace
}  // namespace gfwsim::proxy
