#include <gtest/gtest.h>

#include "crypto/hkdf.h"
#include "crypto/rng.h"
#include "proxy/aead_crypto.h"

namespace gfwsim::proxy {
namespace {

class AeadCipherSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(AeadCipherSweep, SealOpenRoundTrip) {
  const auto* spec = find_cipher(GetParam());
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->kind, CipherKind::kAead);

  crypto::Rng rng(201);
  const Bytes key = aead_master_key(*spec, "password");
  const Bytes salt = rng.bytes(spec->iv_len);
  const Bytes msg = rng.bytes(50);

  AeadSession enc(*spec, key, salt);
  AeadSession dec(*spec, key, salt);
  const Bytes sealed = enc.seal(msg);
  EXPECT_EQ(sealed.size(), msg.size() + kAeadTagLen);
  const auto opened = dec.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_P(AeadCipherSweep, NonceAdvancesPerOperation) {
  const auto* spec = find_cipher(GetParam());
  crypto::Rng rng(202);
  const Bytes key = aead_master_key(*spec, "password");
  const Bytes salt = rng.bytes(spec->iv_len);

  AeadSession enc(*spec, key, salt);
  EXPECT_EQ(enc.nonce_counter(), 0u);
  const Bytes a = enc.seal(to_bytes("same"));
  EXPECT_EQ(enc.nonce_counter(), 1u);
  const Bytes b = enc.seal(to_bytes("same"));
  EXPECT_EQ(enc.nonce_counter(), 2u);
  EXPECT_NE(a, b);  // different nonces -> different ciphertexts
}

TEST_P(AeadCipherSweep, FailedOpenDoesNotAdvanceNonce) {
  const auto* spec = find_cipher(GetParam());
  crypto::Rng rng(203);
  const Bytes key = aead_master_key(*spec, "password");
  const Bytes salt = rng.bytes(spec->iv_len);

  AeadSession enc(*spec, key, salt);
  AeadSession dec(*spec, key, salt);
  Bytes sealed = enc.seal(to_bytes("payload"));
  Bytes corrupted = sealed;
  corrupted[0] ^= 1;
  EXPECT_FALSE(dec.open(corrupted).has_value());
  EXPECT_EQ(dec.nonce_counter(), 0u);
  // Original still opens after the failure.
  EXPECT_TRUE(dec.open(sealed).has_value());
}

TEST_P(AeadCipherSweep, ChunkWriterReaderRoundTrip) {
  const auto* spec = find_cipher(GetParam());
  crypto::Rng rng(204);
  const Bytes key = aead_master_key(*spec, "password");
  const Bytes salt = rng.bytes(spec->iv_len);
  const Bytes msg = rng.bytes(1000);

  AeadChunkWriter writer(*spec, key, salt);
  Bytes wire = salt;
  append(wire, writer.encode(msg));

  AeadChunkReader reader(*spec, key);
  Bytes out;
  EXPECT_EQ(reader.feed(wire, out), AeadChunkReader::Status::kData);
  EXPECT_EQ(out, msg);
  EXPECT_EQ(reader.salt(), salt);
}

INSTANTIATE_TEST_SUITE_P(AllAeadCiphers, AeadCipherSweep,
                         ::testing::Values("aes-128-gcm", "aes-192-gcm", "aes-256-gcm",
                                           "chacha20-ietf-poly1305"));

TEST(AeadSession, SubkeyIsHkdfSha1OfSalt) {
  // Interop check: the wire format of a sealed chunk must be decryptable
  // by a session constructed from the HKDF-derived subkey semantics.
  const auto* spec = find_cipher("aes-256-gcm");
  const Bytes key = aead_master_key(*spec, "pw");
  Bytes salt_a(32, 0xaa), salt_b(32, 0xbb);
  AeadSession a(*spec, key, salt_a);
  AeadSession b(*spec, key, salt_b);
  EXPECT_NE(a.seal(to_bytes("x")), b.seal(to_bytes("x")));
}

TEST(AeadChunkReader, ByteAtATimeFeeding) {
  const auto* spec = find_cipher("chacha20-ietf-poly1305");
  crypto::Rng rng(205);
  const Bytes key = aead_master_key(*spec, "pw");
  const Bytes salt = rng.bytes(32);
  const Bytes msg = to_bytes("trickled through the firewall one byte at a time");

  AeadChunkWriter writer(*spec, key, salt);
  Bytes wire = salt;
  append(wire, writer.encode(msg));

  AeadChunkReader reader(*spec, key);
  Bytes out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto status = reader.feed(ByteSpan(wire.data() + i, 1), out);
    EXPECT_NE(status, AeadChunkReader::Status::kAuthError);
  }
  EXPECT_EQ(out, msg);
}

TEST(AeadChunkReader, MultipleChunksAndLargePayload) {
  const auto* spec = find_cipher("aes-128-gcm");
  crypto::Rng rng(206);
  const Bytes key = aead_master_key(*spec, "pw");
  const Bytes salt = rng.bytes(16);
  // Exceeds kAeadMaxChunkPayload -> split into multiple chunks.
  const Bytes msg = rng.bytes(0x3fff * 2 + 100);

  AeadChunkWriter writer(*spec, key, salt);
  Bytes wire = salt;
  append(wire, writer.encode(msg));

  AeadChunkReader reader(*spec, key);
  Bytes out;
  reader.feed(wire, out);
  EXPECT_EQ(out, msg);
}

TEST(AeadChunkReader, TamperedLengthFieldIsAuthError) {
  const auto* spec = find_cipher("aes-256-gcm");
  crypto::Rng rng(207);
  const Bytes key = aead_master_key(*spec, "pw");
  const Bytes salt = rng.bytes(32);

  AeadChunkWriter writer(*spec, key, salt);
  Bytes wire = salt;
  append(wire, writer.encode(to_bytes("hello")));
  wire[salt.size()] ^= 0x40;  // flip a bit in the sealed length field

  AeadChunkReader reader(*spec, key);
  Bytes out;
  EXPECT_EQ(reader.feed(wire, out), AeadChunkReader::Status::kAuthError);
  EXPECT_TRUE(out.empty());
  // Once failed, always failed.
  EXPECT_EQ(reader.feed(to_bytes("more"), out), AeadChunkReader::Status::kAuthError);
}

TEST(AeadChunkReader, RandomProbeBytesAreAuthError) {
  // What a GFW random probe looks like to a spec-compliant AEAD server:
  // garbage salt derives *some* subkey, and the first length-open fails.
  const auto* spec = find_cipher("chacha20-ietf-poly1305");
  crypto::Rng rng(208);
  const Bytes key = aead_master_key(*spec, "pw");
  const Bytes probe = rng.bytes(221);  // type NR2 length

  AeadChunkReader reader(*spec, key);
  Bytes out;
  EXPECT_EQ(reader.feed(probe, out), AeadChunkReader::Status::kAuthError);
}

TEST(AeadChunkReader, ShortRandomProbeJustWaits) {
  const auto* spec = find_cipher("chacha20-ietf-poly1305");
  crypto::Rng rng(209);
  const Bytes key = aead_master_key(*spec, "pw");
  const Bytes probe = rng.bytes(49);  // below salt(32)+len(2)+tag(16)=50

  AeadChunkReader reader(*spec, key);
  Bytes out;
  EXPECT_EQ(reader.feed(probe, out), AeadChunkReader::Status::kNeedMore);
}

TEST(AeadSession, RejectsMismatchedParameters) {
  const auto* spec = find_cipher("aes-256-gcm");
  const Bytes key(32, 1), salt(32, 2), bad_salt(16, 2), bad_key(16, 1);
  EXPECT_THROW(AeadSession(*spec, bad_key, salt), std::invalid_argument);
  EXPECT_THROW(AeadSession(*spec, key, bad_salt), std::invalid_argument);
  const auto* stream_spec = find_cipher("aes-256-ctr");
  EXPECT_THROW(AeadSession(*stream_spec, key, Bytes(16, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace gfwsim::proxy
