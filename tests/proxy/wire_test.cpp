#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "proxy/wire.h"

namespace gfwsim::proxy {
namespace {

class WireSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WireSweep, EncryptorDecryptorRoundTrip) {
  const auto* spec = find_cipher(GetParam());
  ASSERT_NE(spec, nullptr);
  crypto::Rng rng(301);
  const Bytes key = master_key(*spec, "hunter2");

  Encryptor enc(*spec, key, rng);
  Decryptor dec(*spec, key);

  const Bytes msg1 = rng.bytes(100);
  const Bytes msg2 = rng.bytes(300);
  Bytes out;
  dec.feed(enc.encrypt(msg1), out);
  dec.feed(enc.encrypt(msg2), out);
  EXPECT_EQ(out, concat(msg1, msg2));
  EXPECT_EQ(dec.iv_or_salt(), enc.iv_or_salt());
}

TEST_P(WireSweep, FirstPacketRoundTripsThroughDecryptor) {
  const auto* spec = find_cipher(GetParam());
  crypto::Rng rng(302);
  const Bytes key = master_key(*spec, "hunter2");

  const auto target = TargetSpec::hostname("www.wikipedia.org", 443);
  const Bytes data = to_bytes("GET / HTTP/1.1\r\nHost: www.wikipedia.org\r\n\r\n");

  for (bool merge : {false, true}) {
    Encryptor enc(*spec, key, rng);
    const Bytes packet = build_first_packet(enc, target, data, merge);

    Decryptor dec(*spec, key);
    Bytes out;
    const auto status = dec.feed(packet, out);
    EXPECT_NE(status, Decryptor::Status::kAuthError);

    const auto parsed = parse_target(out, false);
    ASSERT_EQ(parsed.status, ParseStatus::kOk);
    EXPECT_EQ(parsed.spec, target);
    EXPECT_EQ(Bytes(out.begin() + static_cast<std::ptrdiff_t>(parsed.consumed), out.end()),
              data);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, WireSweep,
                         ::testing::Values("aes-256-cfb", "aes-128-ctr", "rc4-md5",
                                           "chacha20", "chacha20-ietf", "aes-128-gcm",
                                           "aes-256-gcm", "chacha20-ietf-poly1305"));

TEST(Wire, StreamFirstPacketLayout) {
  // stream: [IV][E(target || data)] -> length = iv_len + 7 + len(data).
  const auto* spec = find_cipher("aes-256-cfb");
  crypto::Rng rng(303);
  const Bytes key = master_key(*spec, "pw");
  Encryptor enc(*spec, key, rng);
  const Bytes data(100, 0x55);
  const Bytes packet =
      build_first_packet(enc, TargetSpec::ipv4(net::Ipv4(1, 2, 3, 4), 80), data, false);
  EXPECT_EQ(packet.size(), 16u + 7 + 100);
}

TEST(Wire, AeadFirstPacketLayoutClassicVsMerged) {
  // classic: salt + (2+16 + H + 16) + (2+16 + D + 16)
  // merged:  salt + (2+16 + H+D + 16)
  const auto* spec = find_cipher("chacha20-ietf-poly1305");
  crypto::Rng rng(304);
  const Bytes key = master_key(*spec, "pw");
  const auto target = TargetSpec::hostname("example.com", 443);  // H = 1+1+11+2 = 15
  const Bytes data(100, 0x55);

  Encryptor enc_classic(*spec, key, rng);
  const Bytes classic = build_first_packet(enc_classic, target, data, false);
  EXPECT_EQ(classic.size(), 32u + (2 + 16 + 15 + 16) + (2 + 16 + 100 + 16));

  Encryptor enc_merged(*spec, key, rng);
  const Bytes merged = build_first_packet(enc_merged, target, data, true);
  EXPECT_EQ(merged.size(), 32u + (2 + 16 + 115 + 16));
}

TEST(Wire, ClassicAeadHeaderChunkLeaksTargetLength) {
  // The pre-July-2020 fingerprint the paper discusses: for a fixed target
  // the classic first packet has a *fixed* prefix structure, and two
  // connections to the same hostname differ in length only via the data.
  const auto* spec = find_cipher("aes-128-gcm");
  crypto::Rng rng(305);
  const Bytes key = master_key(*spec, "pw");
  const auto target = TargetSpec::hostname("a.example", 443);

  Encryptor e1(*spec, key, rng), e2(*spec, key, rng);
  const Bytes p1 = build_first_packet(e1, target, Bytes(40, 1), false);
  const Bytes p2 = build_first_packet(e2, target, Bytes(90, 2), false);
  EXPECT_EQ(p2.size() - p1.size(), 50u);  // only the data chunk varies
}

TEST(Wire, WrongPasswordFailsAeadAndGarblesStream) {
  crypto::Rng rng(306);
  {
    const auto* spec = find_cipher("aes-256-gcm");
    Encryptor enc(*spec, master_key(*spec, "right"), rng);
    Decryptor dec(*spec, master_key(*spec, "wrong"));
    Bytes out;
    EXPECT_EQ(dec.feed(enc.encrypt(to_bytes("secret")), out), Decryptor::Status::kAuthError);
  }
  {
    const auto* spec = find_cipher("aes-256-ctr");
    Encryptor enc(*spec, master_key(*spec, "right"), rng);
    Decryptor dec(*spec, master_key(*spec, "wrong"));
    Bytes out;
    // Stream construction has no integrity: decryption "succeeds" but
    // produces garbage — the root cause of the probing vulnerabilities.
    EXPECT_EQ(dec.feed(enc.encrypt(to_bytes("secret")), out), Decryptor::Status::kData);
    EXPECT_NE(out, to_bytes("secret"));
  }
}

TEST(Wire, EachEncryptorDrawsFreshIv) {
  const auto* spec = find_cipher("aes-256-gcm");
  crypto::Rng rng(307);
  const Bytes key = master_key(*spec, "pw");
  Encryptor a(*spec, key, rng), b(*spec, key, rng);
  EXPECT_NE(a.iv_or_salt(), b.iv_or_salt());
}

}  // namespace
}  // namespace gfwsim::proxy
