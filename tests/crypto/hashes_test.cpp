// Published-vector and property tests for MD5, SHA-1, SHA-256, HMAC, RC4.
#include <gtest/gtest.h>

#include <string>

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/md5.h"
#include "crypto/rc4.h"
#include "crypto/rng.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace gfwsim::crypto {
namespace {

std::string md5_hex(std::string_view msg) {
  return hex_encode(md5(to_bytes(msg)));
}
std::string sha1_hex(std::string_view msg) {
  return hex_encode(sha1(to_bytes(msg)));
}
std::string sha256_hex(std::string_view msg) {
  return hex_encode(sha256(to_bytes(msg)));
}

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5_hex("The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Md5 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    const auto chunk = msg.substr(i, 7);
    h.update(to_bytes(chunk));
  }
  EXPECT_EQ(hex_encode(h.finish()), md5_hex(msg));
}

TEST(Md5, BoundarySizedInputs) {
  // Cross the 55/56/64-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'q');
    Md5 a;
    a.update(to_bytes(msg));
    Md5 b;
    b.update(to_bytes(msg.substr(0, len / 2)));
    b.update(to_bytes(msg.substr(len / 2)));
    EXPECT_EQ(hex_encode(a.finish()), hex_encode(b.finish())) << "len=" << len;
  }
}

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(to_bytes(chunk));
  EXPECT_EQ(hex_encode(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Hmac, Rfc2202Md5) {
  const Bytes key(16, 0x0b);
  const auto tag = Hmac<Md5>::mac(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_encode(ByteSpan(tag.data(), tag.size())),
            "9294727a3638bb1c13f48ef8158bfc9d");

  const auto tag2 = Hmac<Md5>::mac(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(ByteSpan(tag2.data(), tag2.size())),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(Hmac, Rfc2202Sha1) {
  const Bytes key(20, 0x0b);
  const auto tag = Hmac<Sha1>::mac(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_encode(ByteSpan(tag.data(), tag.size())),
            "b617318655057264e28bc0b6fb378c8ef146be00");

  const auto tag2 = Hmac<Sha1>::mac(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(ByteSpan(tag2.data(), tag2.size())),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc4231Sha256) {
  const Bytes key(20, 0x0b);
  const auto tag = Hmac<Sha256>::mac(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_encode(ByteSpan(tag.data(), tag.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 2202 test 6: 80-byte key of 0xaa.
  const Bytes key(80, 0xaa);
  const auto tag = Hmac<Sha1>::mac(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(ByteSpan(tag.data(), tag.size())),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(Hmac, StreamingMatchesOneShot) {
  Rng rng(42);
  const Bytes key = rng.bytes(32);
  const Bytes msg = rng.bytes(301);
  Hmac<Sha256> h(key);
  h.update(ByteSpan(msg.data(), 100));
  h.update(ByteSpan(msg.data() + 100, 201));
  const auto streamed = h.finish();
  const auto one_shot = Hmac<Sha256>::mac(key, msg);
  EXPECT_EQ(hex_encode(ByteSpan(streamed.data(), streamed.size())),
            hex_encode(ByteSpan(one_shot.data(), one_shot.size())));
}

TEST(Rc4, KnownVectors) {
  // Classic test vectors (e.g. from the original posting / Wikipedia).
  Rc4 a(to_bytes("Key"));
  EXPECT_EQ(hex_encode(a.transform(to_bytes("Plaintext"))), "bbf316e8d940af0ad3");

  Rc4 b(to_bytes("Wiki"));
  EXPECT_EQ(hex_encode(b.transform(to_bytes("pedia"))), "1021bf0420");

  Rc4 c(to_bytes("Secret"));
  EXPECT_EQ(hex_encode(c.transform(to_bytes("Attack at dawn"))),
            "45a01f645fc35b383552544b9bf5");
}

TEST(Rc4, RoundTrip) {
  Rng rng(7);
  const Bytes key = rng.bytes(16);
  const Bytes msg = rng.bytes(500);
  Rc4 enc(key);
  Rc4 dec(key);
  const Bytes ct = enc.transform(msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(dec.transform(ct), msg);
}

TEST(Bytes, HexRoundTrip) {
  Rng rng(1);
  const Bytes data = rng.bytes(64);
  const auto decoded = hex_decode(hex_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Bytes, HexDecodeRejectsMalformed) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // non-hex
  EXPECT_TRUE(hex_decode("").has_value());       // empty ok
  EXPECT_TRUE(hex_decode("AbCd").has_value());   // mixed case ok
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

}  // namespace
}  // namespace gfwsim::crypto
