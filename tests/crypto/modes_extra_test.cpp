// Additional NIST SP 800-38A / 800-38D coverage for the AES modes, plus
// cross-key-size properties.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/gcm.h"
#include "crypto/rng.h"

namespace gfwsim::crypto {
namespace {

Bytes unhex(std::string_view s) {
  auto v = hex_decode(s);
  EXPECT_TRUE(v.has_value()) << s;
  return *v;
}

const Bytes kSp38aPlaintext = *hex_decode(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710");

TEST(AesCtr, NistSp80038aAes192) {
  const Bytes key = unhex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b");
  const Bytes iv = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  AesCtr ctr(key, iv);
  EXPECT_EQ(hex_encode(ctr.transform(kSp38aPlaintext)),
            "1abc932417521ca24f2b0459fe7e6e0b"
            "090339ec0aa6faefd5ccc2c6f4ce8e94"
            "1e36b26bd1ebc670d1bd1d665620abf7"
            "4f78a7f6d29809585a97daec58c6b050");
}

TEST(AesCtr, NistSp80038aAes256) {
  const Bytes key =
      unhex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Bytes iv = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  AesCtr ctr(key, iv);
  EXPECT_EQ(hex_encode(ctr.transform(kSp38aPlaintext)),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5"
            "2b0930daa23de94ce87017ba2d84988d"
            "dfc9c58db67aada613c2dd08457941a6");
}

TEST(AesCfb, NistSp80038aAes256FirstBlock) {
  const Bytes key =
      unhex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Bytes iv = unhex("000102030405060708090a0b0c0d0e0f");
  AesCfb cfb(key, iv);
  const Bytes ct = cfb.encrypt(ByteSpan(kSp38aPlaintext.data(), 16));
  EXPECT_EQ(hex_encode(ct), "dc7e84bfda79164b7ecd8486985d3860");
}

TEST(AesCtr, CounterWrapsAcrossBlockBoundary) {
  // IV of all-FF: the big-endian counter must wrap to zero for block 2.
  const Bytes key(16, 0x01);
  const Bytes iv(16, 0xff);
  AesCtr a(key, iv);
  const Bytes two_blocks = a.transform(Bytes(32, 0));

  // Manually: block1 = E(ff..ff), block2 = E(00..00).
  Aes aes(key);
  Aes::Block ff_block, zero_block{};
  ff_block.fill(0xff);
  const auto k1 = aes.encrypt_block(ff_block);
  const auto k2 = aes.encrypt_block(zero_block);
  EXPECT_EQ(Bytes(two_blocks.begin(), two_blocks.begin() + 16),
            Bytes(k1.begin(), k1.end()));
  EXPECT_EQ(Bytes(two_blocks.begin() + 16, two_blocks.end()),
            Bytes(k2.begin(), k2.end()));
}

TEST(AesGcm, AadOnlyRoundTrip) {
  Rng rng(77);
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    const Bytes key = rng.bytes(key_len);
    const Bytes nonce = rng.bytes(12);
    const Bytes aad = rng.bytes(37);
    AesGcm gcm(key);
    const Bytes sealed = gcm.seal(nonce, {}, aad);
    EXPECT_EQ(sealed.size(), 16u);
    EXPECT_TRUE(gcm.open(nonce, sealed, aad).has_value());
    Bytes wrong_aad = aad;
    wrong_aad[0] ^= 1;
    EXPECT_FALSE(gcm.open(nonce, sealed, wrong_aad).has_value());
  }
}

TEST(AesGcm, DistinctNoncesDistinctCiphertexts) {
  Rng rng(78);
  const Bytes key = rng.bytes(32);
  AesGcm gcm(key);
  const Bytes pt = rng.bytes(48);
  const Bytes n1 = rng.bytes(12), n2 = rng.bytes(12);
  EXPECT_NE(gcm.seal(n1, pt), gcm.seal(n2, pt));
  // And ciphertexts never open under the wrong nonce.
  EXPECT_FALSE(gcm.open(n2, gcm.seal(n1, pt)).has_value());
}

TEST(AesGcm, LargeMultiBlockPayload) {
  Rng rng(79);
  const Bytes key = rng.bytes(16);
  const Bytes nonce = rng.bytes(12);
  const Bytes pt = rng.bytes(4096 + 5);  // non-multiple of 16
  AesGcm gcm(key);
  const auto opened = gcm.open(nonce, gcm.seal(nonce, pt));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

}  // namespace
}  // namespace gfwsim::crypto
