// RFC 8439 vectors for ChaCha20, Poly1305, and the combined AEAD.
#include <gtest/gtest.h>

#include "crypto/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/chacha20_poly1305.h"
#include "crypto/poly1305.h"
#include "crypto/rng.h"

namespace gfwsim::crypto {
namespace {

Bytes unhex(std::string_view s) {
  auto v = hex_decode(s);
  EXPECT_TRUE(v.has_value()) << s;
  return *v;
}

Bytes sequential_key() {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

TEST(ChaCha20, Rfc8439BlockFunction) {
  // RFC 8439 section 2.3.2: key 00..1f, nonce 000000090000004a00000000,
  // counter 1.
  const Bytes key = sequential_key();
  const Bytes nonce = unhex("000000090000004a00000000");
  const auto block = ChaCha20::block(key, nonce, 1);
  EXPECT_EQ(hex_encode(ByteSpan(block.data(), block.size())),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  // RFC 8439 section 2.4.2.
  const Bytes key = sequential_key();
  const Bytes nonce = unhex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  ChaCha20 stream(key, nonce, 1);
  const Bytes ct = stream.transform(to_bytes(plaintext));
  EXPECT_EQ(hex_encode(ByteSpan(ct.data(), 16)), "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(hex_encode(ByteSpan(ct.data() + ct.size() - 10, 10)), "b40b8eedf2785e42874d");
}

TEST(ChaCha20, LegacyVariantDiffersFromIetf) {
  const Bytes key = sequential_key();
  const Bytes nonce8(8, 0x01);
  const Bytes nonce12 = [] {
    Bytes n(12, 0x00);
    for (int i = 0; i < 8; ++i) n[4 + i] = 0x01;
    return n;
  }();
  ChaCha20 legacy(key, nonce8);
  ChaCha20 ietf(key, nonce12);
  const Bytes msg(64, 0);
  // With counter 0 and the nonce bytes aligned the same way, legacy and
  // IETF layouts coincide for the first block (both place the 8-byte nonce
  // in words 14..15 when the IETF 12-byte nonce has a zero prefix).
  EXPECT_EQ(legacy.transform(msg), ietf.transform(msg));

  // But after 2^32 blocks the counters diverge; more practically, a
  // different nonce prefix changes the IETF keystream.
  Bytes nonce12b = nonce12;
  nonce12b[0] = 0xff;
  ChaCha20 legacy2(key, nonce8);
  ChaCha20 ietf2(key, nonce12b);
  EXPECT_NE(legacy2.transform(msg), ietf2.transform(msg));
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  Rng rng(11);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes msg = rng.bytes(200);

  ChaCha20 whole(key, nonce);
  const Bytes expected = whole.transform(msg);

  ChaCha20 chunked(key, nonce);
  Bytes got;
  for (std::size_t i = 0; i < msg.size(); i += 33) {
    const std::size_t take = std::min<std::size_t>(33, msg.size() - i);
    append(got, chunked.transform(ByteSpan(msg.data() + i, take)));
  }
  EXPECT_EQ(got, expected);
}

TEST(ChaCha20, RejectsBadSizes) {
  const Bytes key(32, 0), short_key(16, 0), nonce(12, 0), bad_nonce(10, 0);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  EXPECT_THROW(ChaCha20(key, bad_nonce), std::invalid_argument);
}

TEST(Poly1305, Rfc8439Vector) {
  const Bytes key =
      unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto tag = Poly1305::mac(key, to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(hex_encode(ByteSpan(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, StreamingMatchesOneShot) {
  Rng rng(12);
  const Bytes key = rng.bytes(32);
  const Bytes msg = rng.bytes(175);
  Poly1305 p(key);
  p.update(ByteSpan(msg.data(), 50));
  p.update(ByteSpan(msg.data() + 50, 125));
  const auto streamed = p.finish();
  const auto one_shot = Poly1305::mac(key, msg);
  EXPECT_EQ(hex_encode(ByteSpan(streamed.data(), streamed.size())),
            hex_encode(ByteSpan(one_shot.data(), one_shot.size())));
}

TEST(ChaCha20Poly1305, Rfc8439AeadVector) {
  // RFC 8439 section 2.8.2.
  const Bytes key =
      unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = unhex("070000004041424344454647");
  const Bytes aad = unhex("50515253c0c1c2c3c4c5c6c7");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";

  ChaCha20Poly1305 aead(key);
  const Bytes sealed = aead.seal(nonce, to_bytes(plaintext), aad);
  ASSERT_EQ(sealed.size(), plaintext.size() + 16);
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data(), 16)), "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data() + plaintext.size(), 16)),
            "1ae10b594f09e26a7e902ecbd0600691");

  const auto opened = aead.open(nonce, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), plaintext);
}

TEST(ChaCha20Poly1305, TamperDetection) {
  Rng rng(13);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes pt = rng.bytes(48);
  ChaCha20Poly1305 aead(key);
  Bytes sealed = aead.seal(nonce, pt);

  for (std::size_t pos : {0u, 20u, 47u, 48u, 63u}) {
    Bytes corrupted = sealed;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(aead.open(nonce, corrupted).has_value()) << "pos=" << pos;
  }
  Bytes wrong_nonce(nonce.begin(), nonce.end());
  wrong_nonce[0] ^= 1;
  EXPECT_FALSE(aead.open(wrong_nonce, sealed).has_value());
}

TEST(ChaCha20Poly1305, EmptyPlaintextStillAuthenticated) {
  const Bytes key(32, 0x77);
  const Bytes nonce(12, 0x01);
  ChaCha20Poly1305 aead(key);
  const Bytes sealed = aead.seal(nonce, {}, to_bytes("hdr"));
  EXPECT_EQ(sealed.size(), 16u);
  EXPECT_TRUE(aead.open(nonce, sealed, to_bytes("hdr")).has_value());
  EXPECT_FALSE(aead.open(nonce, sealed, to_bytes("hdx")).has_value());
}

}  // namespace
}  // namespace gfwsim::crypto
