// FIPS-197 AES vectors, NIST GCM vectors, CTR/CFB mode properties.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/gcm.h"
#include "crypto/rng.h"

namespace gfwsim::crypto {
namespace {

Bytes unhex(std::string_view s) {
  auto v = hex_decode(s);
  EXPECT_TRUE(v.has_value()) << s;
  return *v;
}

TEST(AesBlock, Fips197Appendix) {
  const Bytes pt = unhex("00112233445566778899aabbccddeeff");
  std::uint8_t out[16];

  Aes aes128(unhex("000102030405060708090a0b0c0d0e0f"));
  aes128.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(ByteSpan(out, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");

  Aes aes192(unhex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  aes192.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(ByteSpan(out, 16)), "dda97ca4864cdfe06eaf70a0ec0d7191");

  Aes aes256(unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  aes256.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(ByteSpan(out, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesBlock, RejectsBadKeySize) {
  const Bytes key(17, 0);
  EXPECT_THROW(Aes{ByteSpan(key)}, std::invalid_argument);
}

TEST(AesCtr, NistSp80038aVector) {
  // SP 800-38A F.5.1 CTR-AES128.Encrypt.
  const Bytes key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  AesCtr ctr(key, iv);
  EXPECT_EQ(hex_encode(ctr.transform(pt)),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr, StatefulStreamingMatchesOneShot) {
  Rng rng(3);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const Bytes msg = rng.bytes(123);

  AesCtr one(key, iv);
  const Bytes whole = one.transform(msg);

  AesCtr chunked(key, iv);
  Bytes pieces;
  for (std::size_t i = 0; i < msg.size(); i += 10) {
    const std::size_t take = std::min<std::size_t>(10, msg.size() - i);
    append(pieces, chunked.transform(ByteSpan(msg.data() + i, take)));
  }
  EXPECT_EQ(pieces, whole);
}

TEST(AesCtr, EncryptionIsInvolution) {
  Rng rng(4);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes msg = rng.bytes(1000);
  AesCtr enc(key, iv);
  AesCtr dec(key, iv);
  EXPECT_EQ(dec.transform(enc.transform(msg)), msg);
}

TEST(AesCfb, NistSp80038aVector) {
  // SP 800-38A F.3.13 CFB128-AES128.Encrypt.
  const Bytes key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = unhex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  AesCfb cfb(key, iv);
  EXPECT_EQ(hex_encode(cfb.encrypt(pt)),
            "3b3fd92eb72dad20333449f8e83cfb4a"
            "c8a64537a0b3a93fcde3cdad9f1ce58b");
}

TEST(AesCfb, RoundTripWithPartialBlocks) {
  Rng rng(5);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const Bytes msg = rng.bytes(77);

  AesCfb enc(key, iv);
  AesCfb dec(key, iv);
  Bytes ct;
  append(ct, enc.encrypt(ByteSpan(msg.data(), 5)));
  append(ct, enc.encrypt(ByteSpan(msg.data() + 5, 72)));
  Bytes pt;
  append(pt, dec.decrypt(ByteSpan(ct.data(), 40)));
  append(pt, dec.decrypt(ByteSpan(ct.data() + 40, 37)));
  EXPECT_EQ(pt, msg);
}

TEST(AesCfb, CiphertextMalleabilityFlipsPlaintext) {
  // The stream-construction weakness the GFW exploits: flipping ciphertext
  // byte i flips plaintext byte i of the *current* block.
  Rng rng(6);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes msg = to_bytes("attack-at-dawn!!");

  AesCfb enc(key, iv);
  Bytes ct = enc.encrypt(msg);
  ct[0] ^= 0x01;
  AesCfb dec(key, iv);
  const Bytes tampered = dec.decrypt(ct);
  EXPECT_EQ(tampered[0], msg[0] ^ 0x01);
}

TEST(AesGcm, NistCase1EmptyPlaintext) {
  const Bytes key(16, 0x00);
  const Bytes nonce(12, 0x00);
  AesGcm gcm(key);
  const Bytes sealed = gcm.seal(nonce, {});
  EXPECT_EQ(hex_encode(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, NistCase2SingleBlock) {
  const Bytes key(16, 0x00);
  const Bytes nonce(12, 0x00);
  const Bytes pt(16, 0x00);
  AesGcm gcm(key);
  const Bytes sealed = gcm.seal(nonce, pt);
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data(), 16)), "0388dace60b6a392f328c2b971b2fe78")
      << "ciphertext mismatch";
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data() + 16, 16)), "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcm, SealOpenRoundTrip) {
  Rng rng(8);
  for (std::size_t key_len : {16u, 24u, 32u}) {
    const Bytes key = rng.bytes(key_len);
    const Bytes nonce = rng.bytes(12);
    const Bytes aad = rng.bytes(20);
    const Bytes pt = rng.bytes(100);
    AesGcm gcm(key);
    const Bytes sealed = gcm.seal(nonce, pt, aad);
    const auto opened = gcm.open(nonce, sealed, aad);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, pt);
  }
}

TEST(AesGcm, TamperDetection) {
  Rng rng(9);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes pt = rng.bytes(64);
  AesGcm gcm(key);
  Bytes sealed = gcm.seal(nonce, pt);

  // Any single-bit flip anywhere (ciphertext or tag) must fail to open.
  for (std::size_t pos : {0u, 31u, 63u, 64u, 79u}) {
    Bytes corrupted = sealed;
    corrupted[pos] ^= 0x80;
    EXPECT_FALSE(gcm.open(nonce, corrupted).has_value()) << "pos=" << pos;
  }
  // Wrong AAD fails too.
  EXPECT_FALSE(gcm.open(nonce, sealed, to_bytes("aad")).has_value());
  // Truncated input fails.
  EXPECT_FALSE(gcm.open(nonce, ByteSpan(sealed.data(), 15)).has_value());
}

}  // namespace
}  // namespace gfwsim::crypto
