// Determinism and statistical-sanity tests for Rng, plus entropy tooling.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/bytes.h"
#include "crypto/entropy.h"
#include "crypto/rng.h"

namespace gfwsim::crypto {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  // Degenerate range.
  EXPECT_EQ(rng.uniform(7, 7), 7u);
  EXPECT_THROW(rng.uniform(8, 7), std::invalid_argument);
}

TEST(Rng, UniformCoversRangeRoughlyEvenly) {
  Rng rng(5);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(0, 9)];
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, LogUniformRespectsBoundsAndMedian) {
  Rng rng(23);
  double log_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.log_uniform(1.0, 10000.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 10000.0);
    log_sum += std::log(v);
  }
  // Mean of log should be the midpoint of [log 1, log 10000].
  EXPECT_NEAR(log_sum / n, 0.5 * std::log(10000.0), 0.1);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.02);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // The child stream should not replicate the parent's continuation.
  Rng parent_copy(77);
  (void)parent_copy.next_u64();  // same draw the fork consumed
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (child.next_u64() == parent_copy.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, BytesAreDeterministicAndBalanced) {
  Rng a(202), b(202);
  const Bytes x = a.bytes(4096);
  EXPECT_EQ(x, b.bytes(4096));
  // Bit balance: each bit position should be ~50% set.
  int ones = 0;
  for (std::uint8_t byte : x) ones += __builtin_popcount(byte);
  EXPECT_NEAR(ones, 4096 * 4, 400);
}

TEST(Entropy, KnownDistributions) {
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
  const Bytes constant(100, 0x41);
  EXPECT_DOUBLE_EQ(shannon_entropy(constant), 0.0);

  Bytes two_symbols(100);
  for (std::size_t i = 0; i < two_symbols.size(); ++i) {
    two_symbols[i] = (i % 2 == 0) ? 0x00 : 0xff;
  }
  EXPECT_NEAR(shannon_entropy(two_symbols), 1.0, 1e-9);

  Bytes all_bytes(256);
  for (int i = 0; i < 256; ++i) all_bytes[i] = static_cast<std::uint8_t>(i);
  EXPECT_NEAR(shannon_entropy(all_bytes), 8.0, 1e-9);
}

TEST(Entropy, UniformRandomApproachesExpectedCurve) {
  Rng rng(55);
  for (std::size_t len : {64u, 256u, 1024u, 8192u}) {
    const Bytes data = rng.bytes(len);
    const double h = shannon_entropy(data);
    const double expected = expected_uniform_entropy(len);
    EXPECT_NEAR(h, expected, 0.35) << "len=" << len;
  }
}

TEST(Entropy, NormalizedEntropyNearOneForRandomShortBuffers) {
  Rng rng(56);
  for (std::size_t len : {8u, 32u, 100u}) {
    const Bytes data = rng.bytes(len);
    EXPECT_GT(normalized_entropy(data), 0.8) << "len=" << len;
  }
  const Bytes constant(50, 1);
  EXPECT_LT(normalized_entropy(constant), 0.05);
}

class EntropySourceSweep : public ::testing::TestWithParam<double> {};

TEST_P(EntropySourceSweep, HitsTargetSourceEntropy) {
  const double target = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(target * 16));
  EntropySource src(target, rng);
  // Large sample: empirical entropy converges to source entropy.
  const Bytes sample = src.generate(200000, rng);
  EXPECT_NEAR(shannon_entropy(sample), target, 0.06) << "target=" << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, EntropySourceSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0, 4.5, 6.0, 7.0, 7.5, 8.0));

TEST(EntropySource, RejectsOutOfRange) {
  Rng rng(1);
  EXPECT_THROW(EntropySource(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(EntropySource(8.1, rng), std::invalid_argument);
}

TEST(EntropySource, ZeroEntropyIsConstant) {
  Rng rng(2);
  EntropySource src(0.0, rng);
  const Bytes data = src.generate(64, rng);
  for (std::uint8_t b : data) EXPECT_EQ(b, data[0]);
}

}  // namespace
}  // namespace gfwsim::crypto
