// Known-answer and cross-check tests for the optimized crypto kernels.
//
// The hot paths (T-table / AES-NI AES, table-driven GHASH) must be
// bit-identical to the retained reference kernels and to the published
// vectors: NIST / McGrew-Viega AES-GCM test cases for all three key
// sizes, and the RFC 8439 ChaCha20-Poly1305 vector. The randomized
// sections hammer the fast paths against the reference kernels across
// lengths that exercise the two-blocks-per-round loop, the single-block
// tail, and partial final blocks.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/chacha20_poly1305.h"
#include "crypto/gcm.h"
#include "crypto/rng.h"

namespace gfwsim::crypto {
namespace {

Bytes unhex(std::string_view s) {
  auto v = hex_decode(s);
  EXPECT_TRUE(v.has_value()) << s;
  return *v;
}

// McGrew & Viega GCM spec / NIST SP 800-38D test cases. PT/AAD are shared
// across key sizes; the 60-byte plaintext (cases 4/10/16) exercises a
// partial final block through both GCTR and GHASH.
constexpr std::string_view kGcmPt64 =
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255";
constexpr std::string_view kGcmAad = "feedfacedeadbeeffeedfacedeadbeefabaddad2";
constexpr std::string_view kGcmIv = "cafebabefacedbaddecaf888";

struct GcmVector {
  std::string_view name;
  std::string_view key;
  bool with_aad;  // with_aad uses the 60-byte plaintext prefix
  std::string_view ct;
  std::string_view tag;
};

const GcmVector kGcmVectors[] = {
    {"tc3-aes128", "feffe9928665731c6d6a8f9467308308", false,
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    {"tc4-aes128", "feffe9928665731c6d6a8f9467308308", true,
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
    {"tc9-aes192", "feffe9928665731c6d6a8f9467308308feffe9928665731c", false,
     "3980ca0b3c00e841eb06fac4872a2757859e1ceaa6efd984628593b40ca1e19c"
     "7d773d00c144c525ac619d18c84a3f4718e2448b2fe324d9ccda2710acade256",
     "9924a7c8587336bfb118024db8674a14"},
    {"tc10-aes192", "feffe9928665731c6d6a8f9467308308feffe9928665731c", true,
     "3980ca0b3c00e841eb06fac4872a2757859e1ceaa6efd984628593b40ca1e19c"
     "7d773d00c144c525ac619d18c84a3f4718e2448b2fe324d9ccda2710",
     "2519498e80f1478f37ba55bd6d27618c"},
    {"tc15-aes256",
     "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308", false,
     "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
     "b094dac5d93471bdec1a502270e3cc6c"},
    {"tc16-aes256",
     "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308", true,
     "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
     "76fc6ece0f4e1768cddf8853bb2d551b"},
};

TEST(GcmKat, McGrewViegaAllKeySizes) {
  for (const auto& v : kGcmVectors) {
    SCOPED_TRACE(v.name);
    const Bytes key = unhex(v.key);
    const Bytes iv = unhex(kGcmIv);
    Bytes pt = unhex(kGcmPt64);
    Bytes aad;
    if (v.with_aad) {
      pt.resize(60);
      aad = unhex(kGcmAad);
    }
    const Bytes expected = concat(unhex(v.ct), unhex(v.tag));

    AesGcm gcm(key);
    EXPECT_EQ(hex_encode(gcm.seal(iv, pt, aad)), hex_encode(expected));

    const auto opened = gcm.open(iv, expected, aad);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(hex_encode(*opened), hex_encode(pt));

    // Any single flipped bit must fail authentication.
    Bytes tampered = expected;
    tampered[tampered.size() / 2] ^= 0x01;
    EXPECT_FALSE(gcm.open(iv, tampered, aad).has_value());
  }
}

TEST(ChaChaPolyKat, Rfc8439Section282) {
  const Bytes key =
      unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = unhex("070000004041424344454647");
  const Bytes aad = unhex("50515253c0c1c2c3c4c5c6c7");
  const Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes expected = concat(
      unhex("d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116"),
      unhex("1ae10b594f09e26a7e902ecbd0600691"));

  ChaCha20Poly1305 aead(key);
  EXPECT_EQ(hex_encode(aead.seal(nonce, pt, aad)), hex_encode(expected));

  const auto opened = aead.open(nonce, expected, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), to_string(pt));
}

TEST(KernelCrossCheck, AesBlockFastVsReference) {
  Rng rng(0xae5b10c5);
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    const Aes aes(rng.bytes(key_len));
    for (int i = 0; i < 256; ++i) {
      std::uint8_t in[Aes::kBlockSize];
      rng.fill(in, sizeof in);
      std::uint8_t fast[Aes::kBlockSize];
      std::uint8_t ref[Aes::kBlockSize];
      aes.encrypt_block(in, fast);
      aes.encrypt_block_reference(in, ref);
      ASSERT_EQ(hex_encode(ByteSpan(fast, sizeof fast)), hex_encode(ByteSpan(ref, sizeof ref)))
          << "key_len=" << key_len << " i=" << i;
    }
  }
}

TEST(KernelCrossCheck, GhashTableVsReference) {
  Rng rng(0x6ba54);
  const AesGcm gcm(rng.bytes(32));
  // Sweep every length 0..64 plus larger odd sizes: covers the paired
  // two-block loop, the lone-block tail, and partial blocks in both the
  // AAD and ciphertext sections.
  for (std::size_t ct_len = 0; ct_len <= 64; ++ct_len) {
    const Bytes aad = rng.bytes(ct_len % 23);
    const Bytes ct = rng.bytes(ct_len);
    ASSERT_EQ(gcm.ghash(aad, ct), gcm.ghash_reference(aad, ct)) << "ct_len=" << ct_len;
  }
  for (const std::size_t ct_len : {97u, 255u, 1500u, 16384u}) {
    const Bytes aad = rng.bytes(41);
    const Bytes ct = rng.bytes(ct_len);
    ASSERT_EQ(gcm.ghash(aad, ct), gcm.ghash_reference(aad, ct)) << "ct_len=" << ct_len;
  }
}

TEST(KernelCrossCheck, GcmSealOpenRoundTripRandomLengths) {
  Rng rng(0x915ea1);
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    const AesGcm gcm(rng.bytes(key_len));
    for (int i = 0; i < 64; ++i) {
      const Bytes nonce = rng.bytes(AesGcm::kNonceSize);
      const Bytes aad = rng.bytes(rng.uniform(0, 48));
      const Bytes pt = rng.bytes(rng.uniform(0, 600));
      const Bytes sealed = gcm.seal(nonce, pt, aad);
      ASSERT_EQ(sealed.size(), pt.size() + AesGcm::kTagSize);
      const auto opened = gcm.open(nonce, sealed, aad);
      ASSERT_TRUE(opened.has_value());
      ASSERT_EQ(hex_encode(*opened), hex_encode(pt));
    }
  }
}

}  // namespace
}  // namespace gfwsim::crypto
