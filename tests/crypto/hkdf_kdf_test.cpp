// RFC 5869 HKDF vectors and EVP_BytesToKey behaviour tests.
#include <gtest/gtest.h>

#include "crypto/bytes.h"
#include "crypto/hkdf.h"
#include "crypto/kdf.h"
#include "crypto/md5.h"
#include "crypto/sha256.h"

namespace gfwsim::crypto {
namespace {

Bytes unhex(std::string_view s) {
  auto v = hex_decode(s);
  EXPECT_TRUE(v.has_value()) << s;
  return *v;
}

TEST(Hkdf, Rfc5869Sha256Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = unhex("000102030405060708090a0b0c");
  const Bytes info = unhex("f0f1f2f3f4f5f6f7f8f9");

  const Bytes prk = hkdf_extract<Sha256>(salt, ikm);
  EXPECT_EQ(hex_encode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  const Bytes okm = hkdf_expand<Sha256>(prk, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Sha256Case3EmptySaltAndInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf<Sha256>(ikm, {}, {}, 42);
  EXPECT_EQ(hex_encode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, Rfc5869Sha1Case4) {
  const Bytes ikm(11, 0x0b);
  const Bytes salt = unhex("000102030405060708090a0b0c");
  const Bytes info = unhex("f0f1f2f3f4f5f6f7f8f9");

  const Bytes prk = hkdf_extract<Sha1>(salt, ikm);
  EXPECT_EQ(hex_encode(prk), "9b6c18c432a7bf8f0e71c8eb88f4b30baa2ba243");

  const Bytes okm = hkdf_expand<Sha1>(prk, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "085a01ea1b10f36933068b56efa5ad81a4f14b822f5b091568a9cdd4f155fda2"
            "c22e422478d305f3f896");
}

TEST(Hkdf, ExpandLengthLimits) {
  const Bytes prk(20, 0x11);
  EXPECT_NO_THROW(hkdf_expand<Sha1>(prk, {}, 255 * 20));
  EXPECT_THROW(hkdf_expand<Sha1>(prk, {}, 255 * 20 + 1), std::invalid_argument);
}

TEST(Hkdf, OutputIsPrefixConsistent) {
  // RFC 5869: shorter outputs are prefixes of longer ones.
  const Bytes ikm(32, 0x42);
  const Bytes salt = to_bytes("salty");
  const Bytes long_okm = hkdf<Sha1>(ikm, salt, to_bytes("info"), 64);
  const Bytes short_okm = hkdf<Sha1>(ikm, salt, to_bytes("info"), 17);
  EXPECT_EQ(Bytes(long_okm.begin(), long_okm.begin() + 17), short_okm);
}

TEST(SsSubkey, MatchesManualHkdfSha1) {
  const Bytes master(32, 0xaa);
  const Bytes salt(32, 0x55);
  const Bytes expected = hkdf<Sha1>(master, salt, to_bytes("ss-subkey"), 32);
  EXPECT_EQ(ss_subkey(master, salt), expected);
}

TEST(SsSubkey, DifferentSaltsGiveDifferentKeys) {
  const Bytes master(32, 0xaa);
  Bytes salt_a(32, 0x01), salt_b(32, 0x02);
  EXPECT_NE(ss_subkey(master, salt_a), ss_subkey(master, salt_b));
}

TEST(EvpBytesToKey, MatchesMd5ChainDefinition) {
  // key = MD5(pw) || MD5(MD5(pw) || pw) || ... truncated to key_len.
  const std::string pw = "barfoo!baz";
  const Bytes d1 = md5(to_bytes(pw));
  const Bytes d2 = md5(concat(d1, to_bytes(pw)));
  const Bytes d3 = md5(concat(d2, to_bytes(pw)));

  EXPECT_EQ(evp_bytes_to_key(pw, 16), d1);

  Bytes want32 = d1;
  append(want32, d2);
  EXPECT_EQ(evp_bytes_to_key(pw, 32), want32);

  // Non-multiple-of-16 lengths truncate the last digest.
  Bytes want24(want32.begin(), want32.begin() + 24);
  EXPECT_EQ(evp_bytes_to_key(pw, 24), want24);

  Bytes want40 = want32;
  want40.insert(want40.end(), d3.begin(), d3.begin() + 8);
  EXPECT_EQ(evp_bytes_to_key(pw, 40), want40);
}

TEST(EvpBytesToKey, KnownOpenSslAnswer) {
  // Independently computable: MD5("test") is a fixed constant, so the
  // 16-byte key for password "test" equals it.
  EXPECT_EQ(hex_encode(evp_bytes_to_key("test", 16)),
            "098f6bcd4621d373cade4e832627b4f6");
}

TEST(EvpBytesToKey, DeterministicAndDistinct) {
  EXPECT_EQ(evp_bytes_to_key("pw1", 32), evp_bytes_to_key("pw1", 32));
  EXPECT_NE(evp_bytes_to_key("pw1", 32), evp_bytes_to_key("pw2", 32));
}

}  // namespace
}  // namespace gfwsim::crypto
