// Edge-case sweeps for the batched wide kernels (PR: batched AES-NI/GCM
// and 4-way ChaCha20/Poly1305 behind the tier-dispatch harness).
//
// Every test pins the kernel-tier cap (ScopedKernelTierCap) and checks
// the portable-batched and SIMD tiers byte-for-byte against the
// reference tier at every lane occupancy the batch loops can see
// (1..8 AES blocks per aes_encrypt_blocks call, 1..4 ChaCha states per
// 256-byte pass), every tail length 0..129 bytes, unaligned buffers,
// in-place transforms, and counter wrap for both ChaCha variants. On
// hosts without the SIMD extensions the kSimd cap degrades to the
// portable tier, so the sweeps still pass (they just cross-check
// portable against reference twice).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/aes.h"
#include "crypto/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/chacha20_poly1305.h"
#include "crypto/cpu.h"
#include "crypto/gcm.h"
#include "crypto/poly1305.h"
#include "crypto/rng.h"

namespace gfwsim::crypto {
namespace {

constexpr KernelTier kCaps[] = {KernelTier::kReference, KernelTier::kPortable,
                                KernelTier::kSimd};

TEST(WideKernels, DispatchRespectsCap) {
  for (const KernelTier cap : kCaps) {
    ScopedKernelTierCap pin(cap);
    const KernelTiers t = active_kernel_tiers();
    EXPECT_LE(static_cast<int>(t.aes), static_cast<int>(cap));
    EXPECT_LE(static_cast<int>(t.ghash), static_cast<int>(cap));
    EXPECT_LE(static_cast<int>(t.chacha), static_cast<int>(cap));
    EXPECT_LE(static_cast<int>(t.poly1305), static_cast<int>(cap));
  }
  EXPECT_FALSE(cpu_feature_string().empty());
  EXPECT_STREQ(tier_name(KernelTier::kReference), "reference");
}

// ---- AES block batches ----------------------------------------------------

// Every lane occupancy of aes_encrypt_blocks: 1..8 exercises the tail
// kernel and the full 8-chain pass; 9..17 exercises the chunk-then-tail
// split. Expected bytes come from the retained byte-wise kernel.
TEST(WideKernels, AesEncryptBlocksAllLaneOccupancies) {
  Rng rng(0x51bb7e01);
  for (const std::size_t key_len : {16u, 24u, 32u}) {
    const Aes aes(rng.bytes(key_len));
    for (std::size_t n = 1; n <= 17; ++n) {
      std::vector<std::uint8_t> in(16 * n), expected(16 * n);
      rng.fill(in.data(), in.size());
      for (std::size_t b = 0; b < n; ++b) {
        aes.encrypt_block_reference(in.data() + 16 * b, expected.data() + 16 * b);
      }
      for (const KernelTier cap : kCaps) {
        ScopedKernelTierCap pin(cap);
        std::vector<std::uint8_t> out(16 * n, 0xa5);
        aes.encrypt_blocks(in.data(), out.data(), n);
        EXPECT_EQ(out, expected) << "key=" << key_len << " n=" << n
                                 << " cap=" << tier_name(cap);
      }
    }
  }
}

// Unaligned source/destination pointers through the batched kernel (the
// SIMD tier must use unaligned loads/stores throughout).
TEST(WideKernels, AesEncryptBlocksUnalignedBuffers) {
  Rng rng(0x7d201c);
  const Aes aes(rng.bytes(32));
  std::vector<std::uint8_t> raw_in(16 * 8 + 1), raw_out(16 * 8 + 1);
  for (std::size_t misalign = 0; misalign <= 1; ++misalign) {
    std::uint8_t* in = raw_in.data() + misalign;
    std::uint8_t* out = raw_out.data() + misalign;
    rng.fill(in, 16 * 8);
    std::vector<std::uint8_t> expected(16 * 8);
    for (std::size_t b = 0; b < 8; ++b) {
      aes.encrypt_block_reference(in + 16 * b, expected.data() + 16 * b);
    }
    for (const KernelTier cap : kCaps) {
      ScopedKernelTierCap pin(cap);
      aes.encrypt_blocks(in, out, 8);
      EXPECT_EQ(0, std::memcmp(out, expected.data(), 16 * 8))
          << "misalign=" << misalign << " cap=" << tier_name(cap);
    }
  }
}

// ---- AES-CTR --------------------------------------------------------------

// All tail lengths 0..129 plus sizes that straddle the 8-block batch,
// including a counter wrap across the whole 16-byte block. Also checks
// in-place operation and split calls (drain path + batch path in one
// stream).
TEST(WideKernels, AesCtrAllTailLengthsAndWrap) {
  Rng rng(0x3e91f2);
  const Bytes key = rng.bytes(16);
  // IV one block before full wrap, so an 8-block batch carries through
  // every counter byte.
  Bytes iv(16, 0xff);
  iv[15] = 0xfe;
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 129; ++n) lengths.push_back(n);
  for (const std::size_t n : {255u, 256u, 257u, 1024u}) lengths.push_back(n);
  for (const std::size_t len : lengths) {
    const Bytes data = rng.bytes(len);
    AesCtr ref_ctr(key, iv);
    Bytes expected(len);
    {
      ScopedKernelTierCap pin(KernelTier::kReference);
      ref_ctr.transform(data, expected.data());
    }
    for (const KernelTier cap : kCaps) {
      ScopedKernelTierCap pin(cap);
      AesCtr ctr(key, iv);
      Bytes out = ctr.transform(data);
      EXPECT_EQ(out, expected) << "len=" << len << " cap=" << tier_name(cap);
      // In-place, split at an odd boundary so the second call starts on
      // the buffered-keystream drain path.
      AesCtr ctr2(key, iv);
      Bytes inplace = data;
      const std::size_t cut = len / 3;
      ctr2.transform(ByteSpan(inplace.data(), cut), inplace.data());
      ctr2.transform(ByteSpan(inplace.data() + cut, len - cut), inplace.data() + cut);
      EXPECT_EQ(inplace, expected) << "in-place len=" << len << " cap=" << tier_name(cap);
    }
  }
}

// ---- ChaCha20 -------------------------------------------------------------

// Lane occupancies 1..4 of the 4-way batch (256-byte passes) plus every
// tail length 0..129, for both the IETF and legacy variants, checked
// against the reference tier. Includes in-place operation.
TEST(WideKernels, ChaChaAllLaneOccupanciesAndTails) {
  Rng rng(0xc4a0b1);
  const Bytes key = rng.bytes(32);
  for (const std::size_t nonce_len : {12u, 8u}) {
    const Bytes nonce = rng.bytes(nonce_len);
    std::vector<std::size_t> lengths;
    for (std::size_t n = 0; n <= 129; ++n) lengths.push_back(n);
    // 1..4 full states per batch pass, with and without spill.
    for (const std::size_t n : {192u, 255u, 256u, 257u, 320u, 511u, 512u, 513u, 1024u}) {
      lengths.push_back(n);
    }
    for (const std::size_t len : lengths) {
      const Bytes data = rng.bytes(len);
      Bytes expected(len);
      {
        ScopedKernelTierCap pin(KernelTier::kReference);
        ChaCha20 ref(key, nonce);
        ref.transform(data, expected.data());
      }
      for (const KernelTier cap : kCaps) {
        ScopedKernelTierCap pin(cap);
        ChaCha20 c(key, nonce);
        Bytes out = c.transform(data);
        EXPECT_EQ(out, expected) << "nonce=" << nonce_len << " len=" << len
                                 << " cap=" << tier_name(cap);
        ChaCha20 c2(key, nonce);
        Bytes inplace = data;
        const std::size_t cut = len % 67;
        c2.transform(ByteSpan(inplace.data(), cut), inplace.data());
        c2.transform(ByteSpan(inplace.data() + cut, len - cut), inplace.data() + cut);
        EXPECT_EQ(inplace, expected)
            << "in-place nonce=" << nonce_len << " len=" << len << " cap=" << tier_name(cap);
      }
    }
  }
}

// Counter wrap inside a 4-block batch: the IETF variant wraps its 32-bit
// counter word, the legacy variant carries into the high word. Start two
// blocks before the wrap so the batch straddles it.
TEST(WideKernels, ChaChaCounterWrapInsideBatch) {
  Rng rng(0x9f113d);
  const Bytes key = rng.bytes(32);
  struct Case {
    std::size_t nonce_len;
    std::uint64_t initial;
  };
  const Case cases[] = {
      {12, 0xfffffffeull},            // IETF: wraps word 12 mid-batch
      {8, 0xfffffffffffffffeull},     // legacy: carries into word 13
      {8, 0x00000000fffffffeull},     // legacy: low-word carry only
  };
  for (const Case& c : cases) {
    const Bytes nonce = rng.bytes(c.nonce_len);
    const Bytes data = rng.bytes(64 * 6 + 13);
    Bytes expected(data.size());
    {
      ScopedKernelTierCap pin(KernelTier::kReference);
      ChaCha20 ref(key, nonce, c.initial);
      ref.transform(data, expected.data());
    }
    for (const KernelTier cap : kCaps) {
      ScopedKernelTierCap pin(cap);
      ChaCha20 cc(key, nonce, c.initial);
      EXPECT_EQ(cc.transform(data), expected)
          << "nonce=" << c.nonce_len << " ctr=" << c.initial << " cap=" << tier_name(cap);
    }
  }
}

// ---- Poly1305 -------------------------------------------------------------

// Batched (4 blocks, deferred carries) vs per-block reference tags at
// every length 0..129 plus multi-batch sizes, including split updates
// that land mid-block so the batch path starts from the buffered state.
TEST(WideKernels, Poly1305BatchAllTailLengths) {
  Rng rng(0x77ac21);
  const Bytes key = rng.bytes(32);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 129; ++n) lengths.push_back(n);
  for (const std::size_t n : {192u, 256u, 1024u, 1037u}) lengths.push_back(n);
  for (const std::size_t len : lengths) {
    const Bytes data = rng.bytes(len);
    Poly1305::Tag expected;
    {
      ScopedKernelTierCap pin(KernelTier::kReference);
      expected = Poly1305::mac(key, data);
    }
    for (const KernelTier cap : kCaps) {
      ScopedKernelTierCap pin(cap);
      EXPECT_EQ(Poly1305::mac(key, data), expected)
          << "len=" << len << " cap=" << tier_name(cap);
      Poly1305 p(key);
      const std::size_t cut = len % 37;
      p.update(ByteSpan(data.data(), cut));
      p.update(ByteSpan(data.data() + cut, len - cut));
      EXPECT_EQ(p.finish(), expected) << "split len=" << len << " cap=" << tier_name(cap);
    }
  }
}

// ---- GHASH / AES-GCM ------------------------------------------------------

// ghash() (quad-fold table / PCLMUL tiers) against ghash_reference()
// (bit-by-bit multiply) at every aad/ct length combination that crosses
// the 64-, 32-, and 16-byte chunk paths.
TEST(WideKernels, GhashAllChunkPaths) {
  Rng rng(0x5eef3a);
  const AesGcm gcm(rng.bytes(32));
  for (std::size_t ct_len = 0; ct_len <= 129; ++ct_len) {
    const Bytes aad = rng.bytes(ct_len % 23);
    const Bytes ct = rng.bytes(ct_len);
    const auto expected = gcm.ghash_reference(aad, ct);
    for (const KernelTier cap : kCaps) {
      ScopedKernelTierCap pin(cap);
      EXPECT_EQ(gcm.ghash(aad, ct), expected)
          << "ct_len=" << ct_len << " cap=" << tier_name(cap);
    }
  }
}

// Full seal/open across tiers: seal under each cap must produce the
// reference tier's exact bytes, and open must round-trip and reject a
// corrupted tag. Lengths cross the 128-byte fused loop, its 8-block CTR
// tail, and partial final blocks.
TEST(WideKernels, GcmSealOpenCrossTier) {
  Rng rng(0x81d2c7);
  for (const std::size_t key_len : {16u, 32u}) {
    const AesGcm gcm(rng.bytes(key_len));
    std::vector<std::size_t> lengths;
    for (std::size_t n = 0; n <= 129; ++n) lengths.push_back(n);
    for (const std::size_t n : {255u, 256u, 257u, 1024u, 1339u}) lengths.push_back(n);
    for (const std::size_t len : lengths) {
      const Bytes nonce = rng.bytes(AesGcm::kNonceSize);
      const Bytes aad = rng.bytes(len % 19);
      const Bytes pt = rng.bytes(len);
      Bytes expected;
      {
        ScopedKernelTierCap pin(KernelTier::kReference);
        expected = gcm.seal(nonce, pt, aad);
      }
      for (const KernelTier cap : kCaps) {
        ScopedKernelTierCap pin(cap);
        const Bytes sealed = gcm.seal(nonce, pt, aad);
        ASSERT_EQ(sealed, expected) << "len=" << len << " key=" << key_len
                                    << " cap=" << tier_name(cap);
        const auto opened = gcm.open(nonce, sealed, aad);
        ASSERT_TRUE(opened.has_value());
        EXPECT_EQ(*opened, pt);
        if (!sealed.empty()) {
          Bytes bad = sealed;
          bad.back() ^= 0x01;
          EXPECT_FALSE(gcm.open(nonce, bad, aad).has_value());
        }
      }
    }
  }
}

// ChaCha20-Poly1305 AEAD across tiers (exercises the 4-way keystream and
// the batched Poly1305 together through the RFC 8439 construction).
TEST(WideKernels, ChaChaPolySealOpenCrossTier) {
  Rng rng(0x2c6d90);
  const ChaCha20Poly1305 aead(rng.bytes(32));
  for (const std::size_t len : {0u, 1u, 63u, 64u, 65u, 129u, 256u, 257u, 1024u}) {
    const Bytes nonce = rng.bytes(ChaCha20Poly1305::kNonceSize);
    const Bytes aad = rng.bytes(len % 13);
    const Bytes pt = rng.bytes(len);
    Bytes expected;
    {
      ScopedKernelTierCap pin(KernelTier::kReference);
      expected = aead.seal(nonce, pt, aad);
    }
    for (const KernelTier cap : kCaps) {
      ScopedKernelTierCap pin(cap);
      const Bytes sealed = aead.seal(nonce, pt, aad);
      ASSERT_EQ(sealed, expected) << "len=" << len << " cap=" << tier_name(cap);
      const auto opened = aead.open(nonce, sealed, aad);
      ASSERT_TRUE(opened.has_value());
      EXPECT_EQ(*opened, pt);
    }
  }
}

}  // namespace
}  // namespace gfwsim::crypto
