// Process-isolated distributed runner: a campaign scattered across
// forked worker processes must survive anything the OS does to a worker
// — SIGKILL, SIGSTOP, a corrupted journal, a process that _Exit()s from
// inside the simulation — and still gather into a merge BIT-IDENTICAL
// to an undisturbed in-process run. Every digest comparison here goes
// through the checkpoint codec (fleet frames), so it covers every
// summary field, every per-server row, and every probe record.
//
// Chaos is injected deterministically: the coordinator counts shard
// START announcements and signals the chaos worker after the Nth, so
// the kill site is reproducible rather than racing wall clocks.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/sha1.h"
#include "gfw/checkpoint.h"
#include "gfw/dist_runner.h"
#include "gfw/runner.h"

namespace gfwsim {
namespace {

// A two-server fleet keeps per-server attribution in play: the merge
// contract has to carry ServerStats rows and server-tagged probe
// records across the process boundary, not just legacy scalars.
gfw::Scenario fleet_scenario() {
  gfw::Scenario scenario;
  scenario.traffic = client::TrafficSpec::browsing();
  scenario.duration = net::hours(6);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.3;
  scenario.base_seed = 0x5AA3D;
  gfw::ServerSpec first;
  first.server.impl = probesim::ServerSetup::Impl::kOutline107;
  first.region = "beijing";
  scenario.fleet.push_back(first);
  gfw::ServerSpec second = first;
  second.server.impl = probesim::ServerSetup::Impl::kLibevNew;
  second.server.cipher = "aes-256-gcm";
  second.region = "unicom";
  scenario.fleet.push_back(second);
  return scenario;
}

// Serialized bytes of one shard's full contribution: summary, teardown,
// blocking history, server rows, and its slice of the merged log. The
// fleet frame codec covers every field except log_offset and
// events_processed, which legitimately differ between partial merges.
Bytes shard_bytes(const gfw::CampaignResult& result,
                  const gfw::ShardSummary& shard) {
  gfw::ProbeLog slice;
  std::vector<gfw::ProbeRecord> records(
      result.log.records().begin() + static_cast<std::ptrdiff_t>(shard.log_offset),
      result.log.records().begin() +
          static_cast<std::ptrdiff_t>(shard.log_offset + shard.probes));
  slice.assign(std::move(records));
  return gfw::serialize_shard_fleet(shard, slice);
}

// SHA-1 over every surviving shard, in merge order.
std::string campaign_digest(const gfw::CampaignResult& result) {
  crypto::Sha1 hash;
  for (const auto& shard : result.shards) hash.update(shard_bytes(result, shard));
  const auto digest = hash.finish();
  return hex_encode(ByteSpan(digest.data(), digest.size()));
}

// Per-shard digests, for comparing a partial merge against the matching
// subset of a complete one.
std::map<std::uint32_t, std::string> shard_digests(
    const gfw::CampaignResult& result) {
  std::map<std::uint32_t, std::string> out;
  for (const auto& shard : result.shards) {
    const auto digest = crypto::Sha1::hash(shard_bytes(result, shard));
    out[shard.shard_index] = hex_encode(ByteSpan(digest.data(), digest.size()));
  }
  return out;
}

gfw::CampaignResult in_process_reference(const gfw::Scenario& scenario) {
  return gfw::ShardedRunner(gfw::ShardedRunnerOptions(8, 2)).run(scenario);
}

gfw::DistRunnerOptions dist_options() {
  gfw::DistRunnerOptions options;
  options.shards = 8;
  options.workers = 4;
  options.shard_retries = 1;
  return options;
}

std::string journal_prefix(const std::string& name) {
  return testing::TempDir() + "gfwsim_dist_" + name;
}

void remove_journals(const std::string& prefix, unsigned workers) {
  for (unsigned slot = 0; slot < workers; ++slot) {
    std::remove((prefix + ".worker" + std::to_string(slot)).c_str());
  }
}

TEST(DistRunner, UndisturbedRunMatchesInProcessRunByteForByte) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult reference = in_process_reference(scenario);
  ASSERT_EQ(reference.shards.size(), 8u);

  const gfw::CampaignResult dist = gfw::DistRunner(dist_options()).run(scenario);
  EXPECT_TRUE(dist.complete());
  EXPECT_TRUE(dist.failures.empty());
  EXPECT_FALSE(dist.interrupted);
  ASSERT_EQ(dist.shards.size(), 8u);
  // Fleet rows made the round trip through the worker journals.
  ASSERT_EQ(dist.shards[0].servers.size(), 2u);
  EXPECT_EQ(dist.shards[0].servers[1].region, "unicom");
  EXPECT_EQ(campaign_digest(dist), campaign_digest(reference));

  // A lone worker (pure containment, no parallelism) merges identically.
  gfw::DistRunnerOptions solo = dist_options();
  solo.workers = 1;
  const gfw::CampaignResult one = gfw::DistRunner(solo).run(scenario);
  EXPECT_EQ(campaign_digest(one), campaign_digest(reference));
}

TEST(DistRunner, SigkilledWorkerIsReplacedAndTheMergeIsUndisturbed) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult reference = in_process_reference(scenario);

  // SIGKILL the chaos worker right after it announces its first shard:
  // no handler runs, no journal flush, the shard dies mid-simulation.
  gfw::DistRunnerOptions options = dist_options();
  options.chaos_kill_after_shards = 1;
  options.chaos_signal = SIGKILL;
  const gfw::CampaignResult chaotic = gfw::DistRunner(options).run(scenario);

  // The replacement worker re-ran the lost shard with the same seed, so
  // the campaign completed and merged bit-identically anyway.
  EXPECT_TRUE(chaotic.complete());
  ASSERT_EQ(chaotic.shards.size(), 8u);
  EXPECT_EQ(campaign_digest(chaotic), campaign_digest(reference));

  // The death is not silent: it is a recovered kCrash failure whose
  // attempt count includes the attempt that died with the process.
  ASSERT_EQ(chaotic.failures.size(), 1u);
  const gfw::ShardFailure& failure = chaotic.failures[0];
  EXPECT_EQ(failure.kind, gfw::FailureKind::kCrash);
  EXPECT_FALSE(failure.quarantined);
  EXPECT_GE(failure.attempts, 2);
  // A process death tells us nothing about seed-determinism.
  EXPECT_FALSE(failure.nondeterministic);
  EXPECT_EQ(failure.seed, gfw::shard_seed(scenario.base_seed, failure.shard_index));
}

TEST(DistRunner, StoppedWorkerIsDeadlinedViaTheSignalLadder) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult reference = in_process_reference(scenario);

  // SIGSTOP models a wedged-not-dead worker: heartbeats cease but
  // waitpid sees nothing. Only the coordinator's arrival-based stall
  // deadline — SIGTERM, then SIGKILL after the grace — collects it.
  gfw::DistRunnerOptions options = dist_options();
  options.chaos_kill_after_shards = 1;
  options.chaos_signal = SIGSTOP;
  options.stall_timeout = std::chrono::milliseconds(250);
  options.term_grace = std::chrono::milliseconds(100);
  const gfw::CampaignResult chaotic = gfw::DistRunner(options).run(scenario);

  EXPECT_TRUE(chaotic.complete());
  ASSERT_EQ(chaotic.shards.size(), 8u);
  EXPECT_EQ(campaign_digest(chaotic), campaign_digest(reference));
  ASSERT_EQ(chaotic.failures.size(), 1u);
  // The coordinator initiated the kill, so the verdict is a stall — the
  // same taxonomy entry an in-process watchdog abort produces.
  EXPECT_EQ(chaotic.failures[0].kind, gfw::FailureKind::kStall);
  EXPECT_FALSE(chaotic.failures[0].quarantined);
  EXPECT_GE(chaotic.failures[0].attempts, 2);
}

TEST(DistRunner, GracefullyExitingSigtermedWorkerIsReplacedNotAbandoned) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult reference = in_process_reference(scenario);

  // SIGTERM mid-shard models a ladder rung-1 target that RECOVERS: the
  // handler only sets the stop flag, so the worker finishes and journals
  // its in-flight shard, then exits with the graceful-interrupt code —
  // leaving the rest of its static range undone. The campaign was never
  // interrupted, so the coordinator must fork a replacement for the
  // remainder instead of quarantining it as "lost without a journal
  // record".
  gfw::DistRunnerOptions options = dist_options();
  options.chaos_kill_after_shards = 1;
  options.chaos_signal = SIGTERM;
  const gfw::CampaignResult chaotic = gfw::DistRunner(options).run(scenario);

  EXPECT_TRUE(chaotic.complete());
  EXPECT_FALSE(chaotic.interrupted);
  ASSERT_EQ(chaotic.shards.size(), 8u);
  // The SIGTERMed worker journaled its shard before exiting, so nothing
  // actually failed — and the replacement's re-run merges undisturbed.
  EXPECT_TRUE(chaotic.failures.empty());
  EXPECT_EQ(campaign_digest(chaotic), campaign_digest(reference));
}

TEST(DistRunner, SigstopChaosWithoutAStallDeadlineIsRefused) {
  // Without a heartbeat deadline a stopped worker would hang the
  // campaign forever; the coordinator refuses the configuration rather
  // than deadlocking.
  gfw::DistRunnerOptions options = dist_options();
  options.chaos_kill_after_shards = 1;
  options.chaos_signal = SIGSTOP;
  options.stall_timeout = std::chrono::milliseconds(0);
  EXPECT_THROW(gfw::DistRunner(options).run(fleet_scenario()),
               std::invalid_argument);
}

TEST(DistRunner, ProcessDeathInsideAShardIsQuarantinedGracefully) {
  // debug_fail_shard.die: the injection point _Exit(57)s the whole
  // worker — no unwinding, no journal flush — on EVERY attempt. The
  // retry budget burns down across successive worker corpses, the shard
  // is quarantined, and the survivors still merge bit-identically to
  // their clean-run selves.
  gfw::Scenario scenario = fleet_scenario();
  scenario.debug_fail_shard.enabled = true;
  scenario.debug_fail_shard.shard = 5;
  scenario.debug_fail_shard.after = net::hours(1);
  scenario.debug_fail_shard.fail_attempts = 1 << 20;
  scenario.debug_fail_shard.die = true;

  const gfw::CampaignResult result = gfw::DistRunner(dist_options()).run(scenario);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.shards_quarantined(), 1u);
  ASSERT_EQ(result.shards.size(), 7u);
  ASSERT_EQ(result.failures.size(), 1u);
  const gfw::ShardFailure& failure = result.failures[0];
  EXPECT_EQ(failure.shard_index, 5u);
  EXPECT_TRUE(failure.quarantined);
  EXPECT_EQ(failure.kind, gfw::FailureKind::kExit);
  EXPECT_EQ(failure.attempts, 2);  // initial try + 1 retry, both fatal

  // Graceful degradation: the other seven shards are exactly what an
  // undisturbed in-process run produced for them.
  const gfw::CampaignResult reference = in_process_reference(fleet_scenario());
  const auto clean = shard_digests(reference);
  std::size_t expected_offset = 0;
  for (const auto& shard : result.shards) {
    EXPECT_NE(shard.shard_index, 5u);
    EXPECT_EQ(shard_digests(result).at(shard.shard_index),
              clean.at(shard.shard_index));
    // Survivors tile the merged log contiguously.
    EXPECT_EQ(shard.log_offset, expected_offset);
    expected_offset += shard.probes;
  }
  EXPECT_EQ(expected_offset, result.log.size());
}

TEST(DistRunner, FlakyProcessDeathRecoversWithGlobalAttemptNumbering) {
  // The injection kills the worker on attempt 0 only. The replacement
  // resumes with attempt_base carrying the dead process's attempt, so
  // the retry sees global attempt 1, skips the injection, and completes
  // the shard — proof the retry budget is shared across process corpses.
  gfw::Scenario scenario = fleet_scenario();
  scenario.debug_fail_shard.enabled = true;
  scenario.debug_fail_shard.shard = 5;
  scenario.debug_fail_shard.after = net::hours(1);
  scenario.debug_fail_shard.fail_attempts = 1;
  scenario.debug_fail_shard.die = true;

  const gfw::CampaignResult result = gfw::DistRunner(dist_options()).run(scenario);
  EXPECT_TRUE(result.complete());
  ASSERT_EQ(result.shards.size(), 8u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].shard_index, 5u);
  EXPECT_FALSE(result.failures[0].quarantined);
  EXPECT_EQ(result.failures[0].kind, gfw::FailureKind::kExit);
  EXPECT_EQ(result.failures[0].attempts, 2);

  // The recovered merge equals a run where the injection is armed but
  // never fires — recovery changed nothing in the transcript.
  gfw::Scenario armed = scenario;
  armed.debug_fail_shard.fail_attempts = 0;
  armed.debug_fail_shard.die = false;
  const gfw::CampaignResult reference = in_process_reference(armed);
  EXPECT_EQ(campaign_digest(result), campaign_digest(reference));
}

TEST(DistRunner, CorruptSlotJournalIsDiscardedAndItsRangeRerun) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult reference = in_process_reference(scenario);
  const std::string prefix = journal_prefix("corrupt");
  remove_journals(prefix, 4);

  gfw::DistRunnerOptions options = dist_options();
  options.journal_prefix = prefix;
  options.keep_journals = true;
  const gfw::CampaignResult first = gfw::DistRunner(options).run(scenario);
  EXPECT_EQ(campaign_digest(first), campaign_digest(reference));

  // Flip a byte in the interior of worker 2's journal: the CRC check
  // turns silent corruption into a CheckpointError, and the resume pass
  // responds by deleting the file and re-running its shard range.
  const std::string victim = prefix + ".worker2";
  {
    std::fstream file(victim, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekp(48);
    char byte = 0;
    file.seekg(48);
    file.get(byte);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(48);
    file.put(byte);
  }
  EXPECT_THROW(gfw::load_checkpoint(victim), gfw::CheckpointError);

  options.resume = true;
  const gfw::CampaignResult resumed = gfw::DistRunner(options).run(scenario);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(campaign_digest(resumed), campaign_digest(reference));
  remove_journals(prefix, 4);
}

TEST(DistRunner, InterruptedCampaignIsPartialAndResumesBitIdentically) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult reference = in_process_reference(scenario);
  const std::string prefix = journal_prefix("interrupt");
  remove_journals(prefix, 4);

  // The flag is set before the run begins: the coordinator SIGTERMs the
  // workers, which journal whatever shard they are on and exit
  // gracefully. However many shards made it, each one merged must match
  // its clean-run self, and the result must say it is partial.
  std::atomic<int> flag{1};
  gfw::DistRunnerOptions options = dist_options();
  options.journal_prefix = prefix;
  options.keep_journals = true;
  options.interrupt = &flag;
  const gfw::CampaignResult partial = gfw::DistRunner(options).run(scenario);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.shards.size(), 8u);
  const auto clean = shard_digests(reference);
  for (const auto& [index, digest] : shard_digests(partial)) {
    EXPECT_EQ(digest, clean.at(index));
  }

  // Clearing the flag and resuming finishes the rest from the journals.
  flag.store(0);
  options.resume = true;
  const gfw::CampaignResult resumed = gfw::DistRunner(options).run(scenario);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(campaign_digest(resumed), campaign_digest(reference));
  remove_journals(prefix, 4);
}

TEST(DistRunner, ShardedRunnerHonorsTheSameInterruptContract) {
  // The threaded runner shares the interrupt semantics: a set flag stops
  // shard claiming, the partial result is marked, and a journaled resume
  // completes to the uninterrupted transcript.
  const gfw::Scenario scenario = fleet_scenario();
  const std::string path = journal_prefix("threaded_interrupt.ckpt");
  std::remove(path.c_str());

  std::atomic<int> flag{1};
  gfw::ShardedRunnerOptions options(8, 2);
  options.checkpoint_path = path;
  options.interrupt = &flag;
  const gfw::CampaignResult partial = gfw::ShardedRunner(options).run(scenario);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.shards.size(), 8u);

  flag.store(0);
  options.resume = true;
  const gfw::CampaignResult resumed = gfw::ShardedRunner(options).run(scenario);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(campaign_digest(resumed),
            campaign_digest(in_process_reference(scenario)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gfwsim
