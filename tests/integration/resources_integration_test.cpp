// Resource governance end to end: an armed governor that never breaches
// is behavior-neutral, backpressure (probe admission caps, per-path
// queue caps) sheds deterministically — bit-identically for any thread
// or worker count — and an actually-breached budget degrades through the
// supervision ladder as a structured kResource quarantine, never a
// crash. OS-level enforcement (DistRunner rlimits, SIGXCPU attribution)
// rides the same taxonomy.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha1.h"
#include "gfw/checkpoint.h"
#include "gfw/dist_runner.h"
#include "gfw/runner.h"

namespace gfwsim {
namespace {

// The transcript-equivalence scenario shape: modest but busy enough that
// every metered allocator (payload bytes, timers, map slots, ARQ rings,
// probe records) sees real traffic in every shard.
gfw::Scenario base_scenario() {
  gfw::Scenario scenario;
  scenario.server.impl = probesim::ServerSetup::Impl::kOutline107;
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.3;
  scenario.base_seed = 0x601DE2;
  return scenario;
}

gfw::CampaignResult run(const gfw::Scenario& scenario, std::uint32_t shards,
                        unsigned threads) {
  return gfw::ShardedRunner(gfw::ShardedRunnerOptions(shards, threads))
      .run(scenario);
}

// SHA-1 over the merged probe log plus each shard's resource verdict:
// equality means both the simulation transcript AND the shed accounting
// are bit-identical.
std::string digest(const gfw::CampaignResult& result) {
  crypto::Sha1 hash;
  for (const auto& shard : result.shards) {
    gfw::ProbeLog slice;
    std::vector<gfw::ProbeRecord> records(
        result.log.records().begin() +
            static_cast<std::ptrdiff_t>(shard.log_offset),
        result.log.records().begin() +
            static_cast<std::ptrdiff_t>(shard.log_offset + shard.probes));
    slice.assign(std::move(records));
    hash.update(gfw::serialize_shard_fleet(shard, slice));
    hash.update(gfw::serialize_resources(shard.shard_index, shard.resources));
  }
  const auto bytes = hash.finish();
  return hex_encode(ByteSpan(bytes.data(), bytes.size()));
}

TEST(ResourceGovernance, ArmedButUnbreachedGovernorIsBehaviorNeutral) {
  // Zero-budget inertness is pinned byte-exactly by the golden digests
  // in transcript_equivalence_test and checkpoint_test. This is the next
  // level up: ARM the governor with budgets far above what the campaign
  // needs, and the transcript must still be identical to the disarmed
  // run — metering observes, it never perturbs. The armed run proves it
  // actually metered (nonzero peaks) rather than short-circuiting.
  const gfw::Scenario disarmed = base_scenario();
  gfw::Scenario armed = base_scenario();
  armed.resources.limits.total_bytes = 1ull << 40;  // 1 TiB: unreachable

  const gfw::CampaignResult baseline = run(disarmed, 2, 2);
  const gfw::CampaignResult governed = run(armed, 2, 2);

  ASSERT_EQ(governed.shards.size(), baseline.shards.size());
  EXPECT_TRUE(governed.failures.empty());
  EXPECT_EQ(governed.log.size(), baseline.log.size());
  for (std::size_t i = 0; i < baseline.shards.size(); ++i) {
    // Transcript fields agree shard by shard...
    EXPECT_EQ(governed.shards[i].probes, baseline.shards[i].probes);
    EXPECT_EQ(governed.shards[i].segments_transmitted,
              baseline.shards[i].segments_transmitted);
    EXPECT_EQ(governed.shards[i].payload_bytes_delivered,
              baseline.shards[i].payload_bytes_delivered);
    // ...and the armed shard really metered.
    EXPECT_GT(governed.shards[i].resources.peak_metered_bytes, 0u);
    EXPECT_GT(governed.shards[i].resources.acquisitions, 0u);
    EXPECT_FALSE(baseline.shards[i].resources.any());
  }
  EXPECT_EQ(governed.probes_shed(), 0u);
  EXPECT_EQ(governed.queue_overflow_drops(), 0u);
  EXPECT_GT(governed.peak_metered_bytes(), 0u);
}

TEST(ResourceGovernance, ShedCountsAreBitIdenticalForAnyThreadCount) {
  // A tight admission cap forces real backpressure: probes defer into
  // the FIFO and overflow is shed. The shed policy lives entirely inside
  // one shard's deterministic event order, so counts — per shard and per
  // server — cannot depend on how shards are scheduled onto threads.
  gfw::Scenario scenario = base_scenario();
  scenario.resources.probe_queue_cap = 1;

  const gfw::CampaignResult serial = run(scenario, 4, 1);
  const gfw::CampaignResult parallel = run(scenario, 4, 4);

  // Backpressure actually engaged somewhere in the campaign.
  EXPECT_GT(serial.probes_deferred() + serial.probes_shed(), 0u);

  ASSERT_EQ(serial.shards.size(), parallel.shards.size());
  for (std::size_t i = 0; i < serial.shards.size(); ++i) {
    const gfw::ShardResources& a = serial.shards[i].resources;
    const gfw::ShardResources& b = parallel.shards[i].resources;
    EXPECT_EQ(a.probes_shed, b.probes_shed) << "shard " << i;
    EXPECT_EQ(a.probes_deferred, b.probes_deferred) << "shard " << i;
    ASSERT_EQ(a.sheds.size(), b.sheds.size()) << "shard " << i;
    for (std::size_t s = 0; s < a.sheds.size(); ++s) {
      EXPECT_EQ(a.sheds[s].server_id, b.sheds[s].server_id);
      EXPECT_EQ(a.sheds[s].region, b.sheds[s].region);
      EXPECT_EQ(a.sheds[s].count, b.sheds[s].count);
    }
  }
  EXPECT_EQ(digest(serial), digest(parallel));
}

TEST(ResourceGovernance, ShedCountsAreBitIdenticalForAnyWorkerCount) {
  // Same contract across the process boundary: forked workers journal
  // their resource verdicts as kind-4 frames, and the gathered merge
  // must match the threaded run exactly — counters included.
  gfw::Scenario scenario = base_scenario();
  scenario.resources.probe_queue_cap = 1;

  const gfw::CampaignResult threaded = run(scenario, 4, 2);

  gfw::DistRunnerOptions solo;
  solo.shards = 4;
  solo.workers = 1;
  const gfw::CampaignResult one = gfw::DistRunner(solo).run(scenario);

  gfw::DistRunnerOptions spread;
  spread.shards = 4;
  spread.workers = 4;
  const gfw::CampaignResult four = gfw::DistRunner(spread).run(scenario);

  EXPECT_TRUE(one.complete());
  EXPECT_TRUE(four.complete());
  EXPECT_EQ(digest(one), digest(threaded));
  EXPECT_EQ(digest(four), digest(threaded));
  EXPECT_EQ(one.probes_shed(), threaded.probes_shed());
  EXPECT_EQ(four.probes_deferred(), threaded.probes_deferred());
}

TEST(ResourceGovernance, BreachedBudgetQuarantinesTheShardNeverTheCampaign) {
  // Self-calibrating breach: measure each shard's probe-record usage
  // clean, then cap the budget just under the hungriest shard's usage.
  // Exactly the shards that exceed the cap breach — deterministically,
  // on retry too — and are quarantined as kResource while the survivors
  // merge bit-identically to their clean-run selves.
  const gfw::Scenario clean = base_scenario();
  const gfw::CampaignResult baseline = run(clean, 4, 2);
  ASSERT_EQ(baseline.shards.size(), 4u);
  std::vector<std::uint64_t> probes;
  for (const auto& shard : baseline.shards) probes.push_back(shard.probes);
  const std::uint64_t max_probes = *std::max_element(probes.begin(), probes.end());
  ASSERT_GT(max_probes, 1u);
  const std::uint64_t cap = max_probes - 1;
  const std::size_t expected_breaches = static_cast<std::size_t>(
      std::count_if(probes.begin(), probes.end(),
                    [cap](std::uint64_t p) { return p > cap; }));
  ASSERT_GE(expected_breaches, 1u);
  ASSERT_LT(expected_breaches, probes.size()) << "need survivors";

  gfw::Scenario budgeted = clean;
  budgeted.resources.limits
      .unit_caps[static_cast<std::size_t>(net::ResourceKind::kProbeRecords)] =
      cap;
  const gfw::CampaignResult governed = run(budgeted, 4, 2);

  // Never a crash: the campaign returned, with the breaching shards
  // quarantined through the ladder and everything else merged.
  EXPECT_FALSE(governed.complete());
  EXPECT_EQ(governed.shards_quarantined(), expected_breaches);
  EXPECT_EQ(governed.resource_failures(), expected_breaches);
  ASSERT_EQ(governed.shards.size(), probes.size() - expected_breaches);
  for (const auto& failure : governed.failures) {
    EXPECT_EQ(failure.kind, gfw::FailureKind::kResource);
    EXPECT_TRUE(failure.quarantined);
    // A budget breach is deterministic, so the retry hit it too and the
    // verdict must NOT be flagged nondeterministic.
    EXPECT_FALSE(failure.nondeterministic);
    EXPECT_NE(failure.what.find("probe-records"), std::string::npos)
        << failure.what;
  }
  // Survivors are bit-identical to their clean-run selves.
  for (const auto& shard : governed.shards) {
    EXPECT_EQ(shard.probes, probes[shard.shard_index]);
  }

  // And the whole degraded outcome reproduces across thread counts.
  const gfw::CampaignResult again = run(budgeted, 4, 4);
  EXPECT_EQ(again.shards_quarantined(), governed.shards_quarantined());
  EXPECT_EQ(digest(again), digest(governed));
}

TEST(ResourceGovernance, FailAtInjectionReproducesExactly) {
  // Deterministic injection: every shard's 2000th metered acquisition
  // throws. All shards quarantine (retries burn down on the same
  // breach), the campaign still returns structured results, and two runs
  // agree verdict for verdict.
  gfw::Scenario scenario = base_scenario();
  scenario.resources.limits.fail_at_acquisition = 2000;

  const gfw::CampaignResult first = run(scenario, 2, 1);
  const gfw::CampaignResult second = run(scenario, 2, 2);

  EXPECT_EQ(first.shards_quarantined(), 2u);
  EXPECT_EQ(first.resource_failures(), 2u);
  EXPECT_TRUE(first.shards.empty());
  ASSERT_EQ(second.failures.size(), first.failures.size());
  for (std::size_t i = 0; i < first.failures.size(); ++i) {
    EXPECT_EQ(first.failures[i].shard_index, second.failures[i].shard_index);
    EXPECT_EQ(first.failures[i].kind, gfw::FailureKind::kResource);
    EXPECT_EQ(first.failures[i].what, second.failures[i].what);
  }
}

TEST(ResourceGovernance, PathQueueCapDropsAreDeterministicAndSurvivable) {
  // A per-path in-flight segment cap turns bursts into kQueueOverflow
  // drops. ARQ recovers (the campaign completes with clean teardown);
  // the drop counters are part of the deterministic transcript.
  gfw::Scenario scenario = base_scenario();
  scenario.resources.path_queue_cap = 2;

  const gfw::CampaignResult capped = run(scenario, 2, 1);
  EXPECT_TRUE(capped.complete());
  EXPECT_TRUE(capped.teardown_clean()) << capped.teardown_failures();
  EXPECT_GT(capped.queue_overflow_drops(), 0u);

  const gfw::CampaignResult again = run(scenario, 2, 2);
  EXPECT_EQ(again.queue_overflow_drops(), capped.queue_overflow_drops());
  EXPECT_EQ(digest(again), digest(capped));
}

TEST(ResourceGovernance, SigxcpuWorkerDeathIsAttributedAsResource) {
  // Deterministic stand-in for a real RLIMIT_CPU kill: the coordinator
  // sends SIGXCPU (the exact signal the kernel raises at the CPU rlimit)
  // to the chaos worker after its first shard start. The death must be
  // attributed as kResource — not an anonymous kCrash — and the
  // replacement worker still completes the campaign.
  gfw::Scenario scenario = base_scenario();
  gfw::DistRunnerOptions options;
  options.shards = 4;
  options.workers = 2;
  options.shard_retries = 1;
  options.chaos_kill_after_shards = 1;
  options.chaos_signal = SIGXCPU;

  const gfw::CampaignResult result = gfw::DistRunner(options).run(scenario);
  EXPECT_TRUE(result.complete());
  ASSERT_EQ(result.shards.size(), 4u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].kind, gfw::FailureKind::kResource);
  EXPECT_FALSE(result.failures[0].quarantined);
  EXPECT_NE(result.failures[0].what.find("RLIMIT_CPU"), std::string::npos)
      << result.failures[0].what;
  EXPECT_EQ(result.resource_failures(), 1u);

  // The recovered merge matches an undisturbed run, resource verdicts
  // included (the replacement re-ran with the same seed).
  gfw::DistRunnerOptions calm;
  calm.shards = 4;
  calm.workers = 2;
  const gfw::CampaignResult reference = gfw::DistRunner(calm).run(scenario);
  EXPECT_EQ(digest(result), digest(reference));
}

TEST(ResourceGovernance, GenerousWorkerRlimitsAreInert) {
  // setrlimit plumbing smoke test: limits far above what the workers
  // need must not perturb the run (and prove the apply path executes in
  // every child without error).
  gfw::Scenario scenario = base_scenario();
  gfw::DistRunnerOptions plain;
  plain.shards = 2;
  plain.workers = 2;
  const gfw::CampaignResult reference = gfw::DistRunner(plain).run(scenario);

  gfw::DistRunnerOptions limited = plain;
  limited.worker_rlimit_as = 8ull << 30;  // 8 GiB address space
  limited.worker_rlimit_cpu = 600;        // 10 CPU-minutes
  limited.worker_rlimit_nofile = 256;
  const gfw::CampaignResult governed = gfw::DistRunner(limited).run(scenario);

  EXPECT_TRUE(governed.complete());
  EXPECT_TRUE(governed.failures.empty());
  EXPECT_EQ(governed.worker_heartbeats_dropped, 0u);
  EXPECT_EQ(digest(governed), digest(reference));
}

}  // namespace
}  // namespace gfwsim
