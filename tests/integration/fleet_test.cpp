// Fleet campaigns: one Scenario describing N heterogeneous servers that
// share ONE World — one event loop, one Network, and critically ONE GFW
// (shared passive classifier, shared prober pool, per-endpoint block
// table with per-region policy). These tests pin the properties the
// paper's cross-implementation and cross-region comparisons rely on:
//   * per-server attribution (probe records carry the server id, and the
//     per-server stats rows partition the shared log exactly);
//   * prober-pool contention is observable (one pool serves the fleet,
//     and individual prober IPs recur across different targets);
//   * blocking is per-endpoint with region policy (one region's block
//     wave leaves the other region's servers running);
//   * by-IP blocks are shared-fate for co-located endpoints;
//   * the sharded merge stays bit-identical for any thread count.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "gfw/runner.h"

namespace gfwsim {
namespace {

gfw::ServerSpec make_spec(probesim::ServerSetup::Impl impl, const char* cipher,
                          const char* region, bool inside_china = false) {
  gfw::ServerSpec spec;
  spec.server.impl = impl;
  spec.server.cipher = cipher;
  spec.region = region;
  spec.inside_china = inside_china;
  return spec;
}

// The acceptance fleet: ≥6 servers, ≥2 implementations x ≥2 ciphers,
// mixed regions, one server on the inside looking out.
gfw::Scenario fleet_scenario() {
  gfw::Scenario scenario;
  scenario.traffic = client::TrafficSpec::browsing();
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(90);
  scenario.classifier_base_rate = 0.35;
  scenario.base_seed = 0xF1EE7CA4;
  // Implementations constrain ciphers (Outline is chacha20-only, the
  // legacy stream servers take stream ciphers), so the grid mixes within
  // what each can run: 4 implementations x 4 ciphers across 2 regions.
  using Impl = probesim::ServerSetup::Impl;
  scenario.fleet.push_back(
      make_spec(Impl::kOutline107, "chacha20-ietf-poly1305", "beijing"));
  scenario.fleet.push_back(
      make_spec(Impl::kOutline107, "chacha20-ietf-poly1305", "unicom"));
  scenario.fleet.push_back(make_spec(Impl::kLibevNew, "aes-256-gcm", "beijing"));
  scenario.fleet.push_back(
      make_spec(Impl::kLibevNew, "chacha20-ietf-poly1305", "unicom"));
  scenario.fleet.push_back(make_spec(Impl::kSsPython, "aes-256-cfb", "beijing",
                                     /*inside_china=*/true));
  scenario.fleet.push_back(make_spec(Impl::kSsr, "rc4-md5", "unicom"));
  return scenario;
}

TEST(Fleet, PerServerStatsPartitionTheSharedLog) {
  const gfw::Scenario scenario = fleet_scenario();
  const gfw::CampaignResult result = gfw::run_serial(scenario);
  EXPECT_TRUE(result.teardown_clean()) << result.teardown_failures();

  const std::vector<gfw::ServerStats> totals = result.fleet_totals();
  ASSERT_EQ(totals.size(), scenario.fleet.size());

  // Every server drove traffic, drew probes, and moved payload bytes; the
  // descriptive columns round-trip from the specs.
  std::size_t probes = 0, connections = 0;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const gfw::ServerStats& s = totals[i];
    EXPECT_EQ(s.server_id, i);
    EXPECT_EQ(s.region, scenario.fleet[i].region);
    EXPECT_EQ(s.impl, probesim::impl_name(scenario.fleet[i].server.impl));
    EXPECT_EQ(s.cipher, scenario.fleet[i].server.cipher);
    EXPECT_GT(s.connections_launched, 0u) << "server " << i;
    EXPECT_GT(s.payload_bytes, 0u) << "server " << i;
    EXPECT_GT(s.probes, 0u) << "server " << i;
    probes += s.probes;
    connections += s.connections_launched;
  }
  // The per-server rows partition the shared log and driver exactly.
  EXPECT_EQ(probes, result.log.size());
  EXPECT_EQ(connections, result.connections_launched());

  // Probe records attribute across the fleet, not all to server 0.
  std::set<std::uint16_t> ids;
  for (const auto& record : result.log.records()) ids.insert(record.server_id);
  EXPECT_GE(ids.size(), 2u);
}

TEST(Fleet, SharedProberPoolServesTheWholeFleet) {
  gfw::World world(fleet_scenario(), /*seed=*/0x9001F1EE7);
  world.run();

  // One pool: every logged probe came through the same acquisition
  // counter, regardless of which server it targeted.
  EXPECT_GT(world.log().size(), 0u);
  EXPECT_EQ(world.gfw().pool().acquisitions(), world.log().size());

  // Contention is visible: individual prober source IPs recur against
  // DIFFERENT servers (a per-server pool could never show this).
  std::map<std::uint32_t, std::set<std::uint16_t>> targets_by_prober;
  for (const auto& record : world.log().records()) {
    targets_by_prober[record.src_ip.value].insert(record.server_id);
  }
  bool prober_shared = false;
  for (const auto& [ip, targets] : targets_by_prober) {
    if (targets.size() >= 2) prober_shared = true;
  }
  EXPECT_TRUE(prober_shared);
}

TEST(Fleet, RegionPolicyBlocksOneRegionAndSparesTheOther) {
  gfw::Scenario scenario;
  scenario.traffic = client::TrafficSpec::browsing();
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.35;
  scenario.base_seed = 0x7E9104;
  // Both servers confirm themselves readily (Outline 1.0.7 answers
  // replays with DATA); only the region policy differs.
  scenario.gfw.blocking.confirmation_threshold = 1.0;
  scenario.gfw.blocking.block_by_ip_fraction = 0.0;
  scenario.gfw.blocking.region_policies["wave"] = {1.0, 1.0};
  scenario.gfw.blocking.region_policies["calm"] = {0.0, 0.0};
  using Impl = probesim::ServerSetup::Impl;
  scenario.fleet.push_back(
      make_spec(Impl::kOutline107, "chacha20-ietf-poly1305", "wave"));
  scenario.fleet.push_back(
      make_spec(Impl::kOutline107, "chacha20-ietf-poly1305", "calm"));

  gfw::World world(scenario, /*seed=*/0xB10CF1EE7);
  world.run();

  const gfw::BlockingModule& blocking = world.gfw().blocking();
  EXPECT_TRUE(blocking.is_blocked(world.server_endpoint(0)));
  EXPECT_FALSE(blocking.is_blocked(world.server_endpoint(1)));
  ASSERT_FALSE(blocking.history().empty());
  for (const auto& entry : blocking.history()) {
    EXPECT_EQ(entry.region, "wave");
    EXPECT_EQ(entry.server_ip, world.server_endpoint(0).addr);
  }

  // The per-server stats attribute the block wave to the right row.
  std::vector<gfw::ServerStats> stats = world.server_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].blocks, 0u);
  EXPECT_EQ(stats[1].blocks, 0u);
}

TEST(Fleet, ByIpBlockIsSharedFateForColocatedEndpoints) {
  gfw::Scenario scenario;
  scenario.traffic = client::TrafficSpec::browsing();
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.35;
  scenario.base_seed = 0x5A11E;
  scenario.gfw.blocking.confirmation_threshold = 1.0;
  scenario.gfw.blocking.block_probability = 1.0;
  scenario.gfw.blocking.block_by_ip_fraction = 1.0;  // every block is by IP
  // Two servers co-located on one address, different ports.
  gfw::ServerSpec a = make_spec(probesim::ServerSetup::Impl::kOutline107,
                                "chacha20-ietf-poly1305", "colo");
  a.ip = net::Ipv4(203, 0, 115, 5);
  a.port = 8388;
  gfw::ServerSpec b = a;
  b.port = 8389;
  scenario.fleet.push_back(a);
  scenario.fleet.push_back(b);

  gfw::World world(scenario, /*seed=*/0xC010C);
  world.run();

  const gfw::BlockingModule& blocking = world.gfw().blocking();
  ASSERT_FALSE(blocking.history().empty());
  EXPECT_FALSE(blocking.history()[0].port.has_value());  // whole-IP block
  // Blocking either endpoint null-routes both: shared fate.
  EXPECT_TRUE(blocking.is_blocked(world.server_endpoint(0)));
  EXPECT_TRUE(blocking.is_blocked(world.server_endpoint(1)));

  // And both stats rows count the IP-wide block.
  std::vector<gfw::ServerStats> stats = world.server_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].blocks, 0u);
  EXPECT_EQ(stats[0].blocks, stats[1].blocks);
}

// Flattens everything a fleet merge produces — per-record server ids
// included — so thread-count independence is checked on the full result.
std::string fleet_transcript(const gfw::CampaignResult& result) {
  std::ostringstream out;
  for (const auto& record : result.log.records()) {
    out << record.server_id << ' ' << record.sent_at.count() << ' '
        << static_cast<int>(record.type) << ' ' << record.server.addr.value << ':'
        << record.server.port << ' ' << static_cast<int>(record.reaction) << '\n';
  }
  for (const auto& server : result.fleet_totals()) {
    out << server.server_id << ' ' << server.impl << ' ' << server.cipher << ' '
        << server.region << ' ' << server.connections_launched << ' '
        << server.payload_bytes << ' ' << server.probes << ' ' << server.blocks
        << '\n';
  }
  return out.str();
}

TEST(Fleet, MergedResultIndependentOfThreadCount) {
  gfw::Scenario scenario = fleet_scenario();
  scenario.duration = net::hours(6);

  gfw::ShardedRunner serial({/*shards=*/2, /*threads=*/1});
  gfw::ShardedRunner pooled({/*shards=*/2, /*threads=*/2});
  const std::string a = fleet_transcript(serial.run(scenario));
  const std::string b = fleet_transcript(pooled.run(scenario));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gfwsim
