// Golden-transcript guard for the zero-copy payload path.
//
// One mid-size campaign (faults + ARQ on, two shards) must produce
// byte-identical merged ProbeLog and tap-record streams forever: the
// golden SHA-1 digests below were captured from the seed code path
// (deep-copied Bytes payloads, bit-wise GHASH, byte-wise AES) before the
// PayloadRef/table-kernel overhaul landed. Any change that perturbs a
// single payload byte, header field, drop cause, or probe record — or
// consumes one extra RNG draw — moves the digests and fails here.
//
// Every field of every record goes into the digest, including the full
// payload bytes of every tap record (the bytes PayloadRef shares between
// the wire copy, the tap, the fault-layer duplicate, and the ARQ
// retransmit queue).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/sha1.h"
#include "gfw/runner.h"

namespace gfwsim {
namespace {

// Captured from the seed path (see file comment); must never change.
constexpr char kGoldenTapDigest[] = "6671e03480256437d50c0d51573f3973c8aa5b6a";
constexpr char kGoldenProbeLogDigest[] = "9325c8231e04e19fad3d2c681b8abc7e32135743";

constexpr std::uint32_t kShards = 2;

gfw::Scenario faulty_scenario() {
  gfw::Scenario scenario;
  scenario.server.impl = probesim::ServerSetup::Impl::kOutline107;
  scenario.server.cipher = "chacha20-ietf-poly1305";
  scenario.traffic = client::TrafficSpec::browsing();
  scenario.duration = net::hours(24);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.35;
  scenario.base_seed = 0x601DE2;
  scenario.faults.loss = 0.02;
  scenario.faults.duplicate = 0.01;
  scenario.faults.reorder = 0.01;
  scenario.faults.jitter = net::milliseconds(5);
  return scenario;
}

void hash_string(crypto::Sha1& h, const std::string& s) {
  h.update(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

// Serializes one tap record — every header field plus the raw payload
// bytes — into the digest.
void hash_record(crypto::Sha1& h, const net::SegmentRecord& rec) {
  std::ostringstream line;
  line << rec.segment.src.addr.value << ':' << rec.segment.src.port << '>'
       << rec.segment.dst.addr.value << ':' << rec.segment.dst.port << ' '
       << static_cast<int>(rec.segment.flags) << ' ' << rec.segment.ip_id << ' '
       << static_cast<int>(rec.segment.ttl) << ' ' << rec.segment.tsval << ' '
       << rec.segment.window << ' ' << rec.segment.seq << ' '
       << rec.segment.ack_seq << ' ' << rec.segment.retransmission << ' '
       << rec.segment.sent_at.count() << ' ' << rec.arrive_at.count() << ' '
       << rec.dropped << ' ' << static_cast<int>(rec.cause) << ' '
       << rec.duplicate << ' ' << rec.fault_delay.count() << ' '
       << rec.segment.payload.size() << '\n';
  hash_string(h, line.str());
  const ByteSpan payload = rec.segment.payload;
  h.update(payload);
}

void hash_probe_record(crypto::Sha1& h, const gfw::ProbeRecord& rec) {
  std::ostringstream line;
  line << rec.sent_at.count() << ' ' << static_cast<int>(rec.type) << ' '
       << rec.server.addr.value << ':' << rec.server.port << ' '
       << rec.src_ip.value << ' ' << rec.asn << ' ' << rec.src_port << ' '
       << static_cast<int>(rec.ttl) << ' ' << rec.tsval << ' '
       << rec.tsval_process << ' ' << rec.payload_len << ' '
       << static_cast<int>(rec.reaction) << ' ' << rec.connect_retries << ' '
       << rec.replay_delay.count() << ' ' << rec.is_first_replay_of_payload << ' '
       << rec.trigger_payload_hash << '\n';
  hash_string(h, line.str());
}

std::string hex_digest(const crypto::Sha1::Digest& d) {
  return hex_encode(ByteSpan(d.data(), d.size()));
}

struct Transcript {
  std::string tap_digest;
  std::string probe_log_digest;
};

Transcript run_and_digest(unsigned threads,
                          const gfw::Scenario& scenario = faulty_scenario()) {
  gfw::ShardedRunner runner({kShards, threads});

  // Per-shard tap hashers, combined in shard order afterwards — the same
  // contract the ProbeLog merge follows, so the result is independent of
  // which thread ran which shard.
  std::vector<std::shared_ptr<crypto::Sha1>> hashers(kShards);
  runner.set_before_run([&hashers](gfw::World& world, std::uint32_t shard) {
    auto hash = std::make_shared<crypto::Sha1>();
    hashers[shard] = hash;
    world.network().set_tap(
        [hash](const net::SegmentRecord& rec) { hash_record(*hash, rec); });
  });

  const gfw::CampaignResult result = runner.run(scenario);

  crypto::Sha1 tap_hash;
  for (const auto& shard_hash : hashers) {
    const auto digest = shard_hash->finish();
    tap_hash.update(ByteSpan(digest.data(), digest.size()));
  }

  crypto::Sha1 log_hash;
  for (const auto& record : result.log.records()) {
    hash_probe_record(log_hash, record);
  }

  EXPECT_GT(result.log.size(), 100u);
  EXPECT_GT(result.retransmissions(), 0u);  // faults + ARQ really were on
  EXPECT_TRUE(result.teardown_clean()) << result.teardown_failures();
  return {hex_digest(tap_hash.finish()), hex_digest(log_hash.finish())};
}

TEST(TranscriptEquivalence, MatchesSeedPathGoldenDigests) {
  const Transcript t = run_and_digest(/*threads=*/2);
  EXPECT_EQ(t.tap_digest, kGoldenTapDigest);
  EXPECT_EQ(t.probe_log_digest, kGoldenProbeLogDigest);
}

// The fleet back-compat contract: a Scenario whose fleet holds exactly
// the single-server entry the legacy fields describe must replay the SAME
// simulation — same seeds, same host order, same RNG draws — so its tap
// and probe-log digests land on the very same goldens.
TEST(TranscriptEquivalence, OneEntryFleetMatchesLegacyGoldenDigests) {
  gfw::Scenario fleet = faulty_scenario();
  fleet.fleet.push_back(fleet.single_server_spec());
  const Transcript t = run_and_digest(/*threads=*/2, fleet);
  EXPECT_EQ(t.tap_digest, kGoldenTapDigest);
  EXPECT_EQ(t.probe_log_digest, kGoldenProbeLogDigest);
}

TEST(TranscriptEquivalence, DigestIndependentOfThreadCount) {
  const Transcript serial = run_and_digest(/*threads=*/1);
  const Transcript pooled = run_and_digest(/*threads=*/2);
  EXPECT_EQ(serial.tap_digest, pooled.tap_digest);
  EXPECT_EQ(serial.probe_log_digest, pooled.probe_log_digest);
}

}  // namespace
}  // namespace gfwsim
