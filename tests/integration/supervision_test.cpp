// Supervised campaigns: a shard crash (or wedge) is contained, retried
// deterministically with the same seed, and at worst quarantined — the
// campaign completes and the survivors' merge stays bit-identical to
// the same shards run clean. Checkpoint/resume must reproduce an
// uninterrupted run's transcript exactly, for any thread count.
//
// The failure injection hook (Scenario::debug_fail_shard) perturbs only
// the targeted shard's event schedule, so every other shard's transcript
// is comparable against a run with no injection at all.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "gfw/checkpoint.h"
#include "gfw/runner.h"

namespace gfwsim {
namespace {

gfw::Scenario small_scenario() {
  gfw::Scenario scenario;
  scenario.server.impl = probesim::ServerSetup::Impl::kOutline107;
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.3;
  scenario.base_seed = 0x5AA3D;
  return scenario;
}

gfw::Scenario crashing_scenario(std::uint32_t shard, int fail_attempts) {
  gfw::Scenario scenario = small_scenario();
  scenario.debug_fail_shard.enabled = true;
  scenario.debug_fail_shard.shard = shard;
  scenario.debug_fail_shard.after = net::hours(2);
  scenario.debug_fail_shard.fail_attempts = fail_attempts;
  return scenario;
}

std::string probe_record_string(const gfw::ProbeRecord& record) {
  std::ostringstream out;
  out << probesim::probe_type_name(record.type) << "," << record.payload_len << ","
      << record.server.addr.to_string() << ":" << record.server.port << ","
      << record.src_ip.to_string() << "," << record.src_port << ","
      << static_cast<int>(record.ttl) << "," << record.tsval << ","
      << record.tsval_process << "," << probesim::reaction_code(record.reaction)
      << "," << record.sent_at.count() << "," << record.connect_retries << ","
      << record.replay_delay.count() << "," << record.is_first_replay_of_payload
      << "," << record.trigger_payload_hash << ";";
  return out.str();
}

// One shard's slice of the merged log, every field of every record.
std::string shard_slice(const gfw::CampaignResult& result,
                        const gfw::ShardSummary& shard) {
  std::string out;
  for (std::size_t i = shard.log_offset; i < shard.log_offset + shard.probes; ++i) {
    out += probe_record_string(result.log.records()[i]);
  }
  return out;
}

// Everything a shard contributed except its position in the merged log
// (log_offset legitimately differs when earlier shards are quarantined).
std::string summary_string(const gfw::ShardSummary& shard) {
  std::ostringstream out;
  out << "[shard " << shard.shard_index << " seed " << shard.seed << " conns "
      << shard.connections_launched << " control " << shard.control_contacts
      << " inspected " << shard.flows_inspected << " flagged " << shard.flows_flagged
      << " tx " << shard.segments_transmitted << " rx " << shard.segments_delivered
      << " payload " << shard.payload_bytes_delivered << " probes " << shard.probes
      << " rtx " << shard.retransmissions << " clean " << shard.teardown.clean()
      << " blocks";
  for (const auto& entry : shard.blocking_history) {
    out << " " << entry.server_ip.to_string() << ":"
        << (entry.port ? static_cast<int>(*entry.port) : -1) << "@"
        << entry.blocked_at.count() << "-" << entry.unblock_at.count();
  }
  out << "]";
  return out.str();
}

// The whole campaign, bit-for-bit: summaries (with offsets), failures,
// and the merged record stream.
std::string transcript(const gfw::CampaignResult& result) {
  std::string out;
  for (const auto& shard : result.shards) {
    out += summary_string(shard) + " offset=" + std::to_string(shard.log_offset);
  }
  out += "|";
  for (const auto& failure : result.failures) out += gfw::describe(failure) + "|";
  for (const auto& record : result.log.records()) out += probe_record_string(record);
  return out;
}

std::string checkpoint_path(const std::string& name) {
  return testing::TempDir() + "gfwsim_supervision_" + name;
}

TEST(Supervision, CrashIsContainedAndQuarantinedAfterDeterministicRetries) {
  gfw::ShardedRunnerOptions options(4, 2);
  options.shard_retries = 2;
  const gfw::CampaignResult result =
      gfw::ShardedRunner(options).run(crashing_scenario(1, /*fail_attempts=*/1 << 20));

  // The campaign completed with exactly the other three shards merged.
  ASSERT_EQ(result.shards.size(), 3u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.shards_quarantined(), 1u);
  EXPECT_FALSE(result.complete());

  const gfw::ShardFailure& failure = result.failures[0];
  EXPECT_EQ(failure.shard_index, 1u);
  EXPECT_EQ(failure.seed, gfw::shard_seed(0x5AA3D, 1));
  EXPECT_TRUE(failure.quarantined);
  EXPECT_EQ(failure.attempts, 3);  // initial try + 2 retries, same seed
  EXPECT_EQ(failure.kind, gfw::FailureKind::kException);
  EXPECT_EQ(failure.phase, gfw::ShardPhase::kRun);
  EXPECT_NE(failure.what.find("debug_fail_shard"), std::string::npos);
  // The same seed failed the same way every attempt: NOT nondeterministic.
  EXPECT_FALSE(failure.nondeterministic);

  // Survivors are bit-identical to the same shards in a crash-free run.
  const gfw::CampaignResult clean =
      gfw::ShardedRunner(gfw::ShardedRunnerOptions(4, 2)).run(small_scenario());
  ASSERT_EQ(clean.shards.size(), 4u);
  std::size_t expected_offset = 0;
  for (const auto& shard : result.shards) {
    const gfw::ShardSummary& reference = clean.shards[shard.shard_index];
    EXPECT_EQ(summary_string(shard), summary_string(reference));
    EXPECT_EQ(shard_slice(result, shard), shard_slice(clean, reference));
    // And the survivors' slices still tile the merged log contiguously.
    EXPECT_EQ(shard.log_offset, expected_offset);
    expected_offset += shard.probes;
  }
  EXPECT_EQ(expected_offset, result.log.size());
}

TEST(Supervision, RecoveredShardIsMergedAndFlaggedNondeterministic) {
  // The injected failure fires on attempt 0 only — modeling a flaky,
  // non-reproducible crash. The retry (same seed) succeeds, the shard is
  // merged, and the recorded failure is flagged nondeterministic.
  gfw::ShardedRunnerOptions options(4, 2);
  options.shard_retries = 1;
  const gfw::CampaignResult result =
      gfw::ShardedRunner(options).run(crashing_scenario(0, /*fail_attempts=*/1));

  ASSERT_EQ(result.shards.size(), 4u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.shards_quarantined(), 0u);
  EXPECT_TRUE(result.complete());
  const gfw::ShardFailure& failure = result.failures[0];
  EXPECT_EQ(failure.shard_index, 0u);
  EXPECT_FALSE(failure.quarantined);
  EXPECT_TRUE(failure.nondeterministic);
  EXPECT_EQ(failure.attempts, 2);

  // The recovered campaign equals one where the injection timer is armed
  // but never fires (fail_attempts=0): recovery changed nothing merged.
  const gfw::CampaignResult reference =
      gfw::ShardedRunner(gfw::ShardedRunnerOptions(4, 2))
          .run(crashing_scenario(0, /*fail_attempts=*/0));
  EXPECT_TRUE(reference.failures.empty());
  for (const auto& shard : result.shards) {
    EXPECT_EQ(summary_string(shard),
              summary_string(reference.shards[shard.shard_index]));
  }
  for (std::size_t i = 0; i < result.log.size(); ++i) {
    ASSERT_EQ(probe_record_string(result.log.records()[i]),
              probe_record_string(reference.log.records()[i]));
  }
}

TEST(Supervision, StallWatchdogDeadlinesAWedgedShard) {
  // The injected stall wedges shard 2's event loop without throwing; only
  // the watchdog's cooperative abort gets the worker back.
  gfw::Scenario scenario = crashing_scenario(2, /*fail_attempts=*/1 << 20);
  scenario.debug_fail_shard.stall = true;
  gfw::ShardedRunnerOptions options(4, 2);
  options.shard_retries = 0;  // one stall is slow enough; don't repeat it
  options.stall_timeout = std::chrono::milliseconds(200);
  const gfw::CampaignResult result = gfw::ShardedRunner(options).run(scenario);

  ASSERT_EQ(result.shards.size(), 3u);
  ASSERT_EQ(result.failures.size(), 1u);
  const gfw::ShardFailure& failure = result.failures[0];
  EXPECT_EQ(failure.shard_index, 2u);
  EXPECT_EQ(failure.kind, gfw::FailureKind::kStall);
  EXPECT_EQ(failure.phase, gfw::ShardPhase::kRun);
  EXPECT_TRUE(failure.quarantined);
  EXPECT_EQ(result.shards_quarantined(), 1u);
}

TEST(Supervision, CheckpointResumeMatchesUninterruptedRunForAnyThreadCount) {
  const std::string path = checkpoint_path("resume.ckpt");
  std::remove(path.c_str());

  // The reference: the same campaign, never interrupted, no journal.
  const gfw::CampaignResult uninterrupted =
      gfw::ShardedRunner(gfw::ShardedRunnerOptions(4, 2)).run(small_scenario());

  // "Interrupted" run: shard 1 crashes with retries exhausted, the other
  // three shards complete and are journaled.
  gfw::ShardedRunnerOptions crash_options(4, 2);
  crash_options.shard_retries = 0;
  crash_options.checkpoint_path = path;
  const gfw::CampaignResult interrupted = gfw::ShardedRunner(crash_options)
          .run(crashing_scenario(1, /*fail_attempts=*/1 << 20));
  ASSERT_EQ(interrupted.shards.size(), 3u);
  ASSERT_EQ(interrupted.shards_quarantined(), 1u);

  // Resume under a different thread count, crash gone (the injection hook
  // only ever perturbed shard 1, which is exactly the shard re-running).
  gfw::ShardedRunnerOptions resume_options(4, 3);
  resume_options.checkpoint_path = path;
  resume_options.resume = true;
  const gfw::CampaignResult resumed =
      gfw::ShardedRunner(resume_options).run(small_scenario());
  EXPECT_TRUE(resumed.complete());
  EXPECT_TRUE(resumed.failures.empty());
  EXPECT_EQ(transcript(resumed), transcript(uninterrupted));

  // Resume again (now nothing to do — all four shards restored from the
  // journal), single-threaded: still the identical transcript.
  resume_options.threads = 1;
  const gfw::CampaignResult restored =
      gfw::ShardedRunner(resume_options).run(small_scenario());
  EXPECT_EQ(transcript(restored), transcript(uninterrupted));
  std::remove(path.c_str());
}

TEST(Supervision, ResumeRefusesACheckpointFromADifferentScenario) {
  const std::string path = checkpoint_path("mismatch.ckpt");
  std::remove(path.c_str());
  gfw::ShardedRunnerOptions options(2, 1);
  options.checkpoint_path = path;
  gfw::ShardedRunner(options).run(small_scenario());

  gfw::Scenario other = small_scenario();
  other.duration = net::hours(13);  // changes the scenario fingerprint
  options.resume = true;
  EXPECT_THROW(gfw::ShardedRunner(options).run(other), gfw::CheckpointError);

  // Same scenario, different shard split: also refused.
  gfw::ShardedRunnerOptions split_options(3, 1);
  split_options.checkpoint_path = path;
  split_options.resume = true;
  EXPECT_THROW(gfw::ShardedRunner(split_options).run(small_scenario()),
               gfw::CheckpointError);
  std::remove(path.c_str());
}

TEST(Supervision, SupervisionDefaultsLeaveTranscriptsUntouched) {
  // Arming the watchdog and retries on a healthy campaign must not change
  // a single byte of the result (the <2% overhead budget starts with
  // "identical output").
  gfw::ShardedRunnerOptions supervised(4, 2);
  supervised.shard_retries = 3;
  supervised.stall_timeout = std::chrono::seconds(30);
  const gfw::CampaignResult a = gfw::ShardedRunner(supervised).run(small_scenario());
  const gfw::CampaignResult b =
      gfw::ShardedRunner(gfw::ShardedRunnerOptions(4, 2)).run(small_scenario());
  EXPECT_TRUE(a.failures.empty());
  EXPECT_EQ(transcript(a), transcript(b));
}

}  // namespace
}  // namespace gfwsim
