// Reproducibility: identical seeds must yield bit-identical experiment
// outcomes — the property every bench in this repository relies on.
#include <gtest/gtest.h>

#include <sstream>

#include "client/ss_client.h"
#include "gfw/world.h"
#include "probesim/probesim.h"

namespace gfwsim {
namespace {

std::string campaign_transcript(std::uint64_t seed) {
  gfw::Scenario config;
  config.server.impl = probesim::ServerSetup::Impl::kOutline107;
  config.duration = net::hours(24);
  config.connection_interval = net::seconds(60);
  config.classifier_base_rate = 0.3;
  gfw::World campaign(config,
                         std::make_unique<client::BrowsingTraffic>(
                             client::BrowsingTraffic::paper_sites()),
                         seed);
  campaign.run();

  std::ostringstream out;
  out << campaign.connections_launched() << "|";
  for (const auto& record : campaign.log().records()) {
    out << probesim::probe_type_name(record.type) << "," << record.payload_len << ","
        << record.src_ip.to_string() << "," << record.src_port << ","
        << static_cast<int>(record.ttl) << "," << record.tsval << ","
        << probesim::reaction_code(record.reaction) << ","
        << record.sent_at.count() << ";";
  }
  return out.str();
}

TEST(Determinism, IdenticalSeedsIdenticalCampaigns) {
  const std::string a = campaign_transcript(0xD37);
  const std::string b = campaign_transcript(0xD37);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 100u);  // non-trivial run
}

TEST(Determinism, DifferentSeedsDifferentCampaigns) {
  EXPECT_NE(campaign_transcript(0xD38), campaign_transcript(0xD39));
}

TEST(Determinism, ProbeLabBatteriesRepeatExactly) {
  const auto run = [] {
    probesim::ServerSetup setup;
    setup.impl = probesim::ServerSetup::Impl::kLibevOld;
    setup.cipher = "aes-256-ctr";
    probesim::ProbeLab lab(setup, 0xD3A);
    const Bytes recorded = lab.establish_legitimate_connection(
        proxy::TargetSpec::hostname("www.wikipedia.org", 443), to_bytes("GET /"));
    const auto battery = lab.prober().replay_battery(recorded, 8);
    std::ostringstream out;
    for (const auto& [type, tally] : battery) {
      out << probesim::probe_type_name(type) << ":" << tally.label() << ";";
    }
    return out.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, VirtualTimeIsIndependentOfWallClock) {
  // Two runs of the same simulation must visit identical timestamps; any
  // dependence on real time would break this immediately.
  const auto timestamps = [] {
    net::EventLoop loop;
    std::vector<std::int64_t> stamps;
    for (int i = 0; i < 50; ++i) {
      loop.schedule_after(net::milliseconds(i * 7), [&stamps, &loop] {
        stamps.push_back(loop.now().count());
      });
    }
    loop.run();
    return stamps;
  };
  EXPECT_EQ(timestamps(), timestamps());
}

}  // namespace
}  // namespace gfwsim
