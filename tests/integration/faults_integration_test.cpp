// The campaign-level contracts the fault layer must preserve, run under a
// nonzero FaultProfile (these tests carry the ctest label `faults`; CI
// runs them alongside the pristine determinism/sharded-runner suites):
//   - same seed => bit-identical campaigns, faults included;
//   - the sharded runner's merge stays independent of thread count;
//   - a default (all-zero) profile leaves every fault counter at zero and
//     the ARQ off — the wiring itself is inert;
//   - the teardown watchdog passes for every shard, faulty or not.
#include <gtest/gtest.h>

#include <sstream>

#include "gfw/runner.h"

namespace gfwsim {
namespace {

gfw::Scenario faulty_scenario() {
  gfw::Scenario scenario;
  scenario.server.impl = probesim::ServerSetup::Impl::kOutline107;
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.3;
  scenario.base_seed = 0xFA17D;
  scenario.faults.loss = 0.02;
  scenario.faults.duplicate = 0.01;
  scenario.faults.reorder = 0.02;
  scenario.faults.jitter = net::milliseconds(5);
  return scenario;
}

gfw::Scenario pristine_scenario() {
  gfw::Scenario scenario = faulty_scenario();
  scenario.faults = net::FaultProfile{};
  return scenario;
}

// Every probe record field plus the full per-shard summary, fault
// counters and teardown verdict included — any divergence shows up here.
std::string transcript(const gfw::CampaignResult& result) {
  std::ostringstream out;
  for (const auto& shard : result.shards) {
    out << "[shard " << shard.shard_index << " seed " << shard.seed << " conns "
        << shard.connections_launched << " probes " << shard.probes << " tx "
        << shard.segments_transmitted << " rx " << shard.segments_delivered
        << " loss " << shard.segments_dropped_loss << " mbox "
        << shard.segments_dropped_middlebox << " outage "
        << shard.segments_dropped_outage << " dup " << shard.segments_duplicated
        << " reord " << shard.segments_reordered << " rtx " << shard.retransmissions
        << " pretry " << shard.probe_connect_retries << " clean "
        << shard.teardown.clean() << "]";
  }
  out << "|";
  for (const auto& record : result.log.records()) {
    out << probesim::probe_type_name(record.type) << "," << record.payload_len << ","
        << record.src_ip.to_string() << "," << record.src_port << ","
        << static_cast<int>(record.ttl) << "," << record.tsval << ","
        << probesim::reaction_code(record.reaction) << "," << record.connect_retries
        << "," << record.sent_at.count() << ";";
  }
  return out.str();
}

TEST(FaultsIntegration, SameSeedSameCampaignUnderFaults) {
  const gfw::CampaignResult a = gfw::run_serial(faulty_scenario());
  const gfw::CampaignResult b = gfw::run_serial(faulty_scenario());
  EXPECT_EQ(transcript(a), transcript(b));
  EXPECT_GT(a.log.size(), 0u);
}

TEST(FaultsIntegration, MergedResultIndependentOfThreadCountUnderFaults) {
  gfw::ShardedRunner serial({4, 1});
  gfw::ShardedRunner pooled({4, 4});
  const gfw::CampaignResult a = serial.run(faulty_scenario());
  const gfw::CampaignResult b = pooled.run(faulty_scenario());
  EXPECT_EQ(transcript(a), transcript(b));
}

TEST(FaultsIntegration, FaultsActuallyPerturbTheCampaign) {
  const gfw::CampaignResult faulty = gfw::run_serial(faulty_scenario());
  const gfw::CampaignResult pristine = gfw::run_serial(pristine_scenario());
  EXPECT_NE(transcript(faulty), transcript(pristine));

  std::size_t loss = 0, dup = 0, reordered = 0;
  for (const auto& shard : faulty.shards) {
    loss += shard.segments_dropped_loss;
    dup += shard.segments_duplicated;
    reordered += shard.segments_reordered;
  }
  EXPECT_GT(loss, 0u);
  EXPECT_GT(dup, 0u);
  EXPECT_GT(reordered, 0u);
  EXPECT_GT(faulty.retransmissions(), 0u);
}

TEST(FaultsIntegration, ZeroProfileWiringIsInert) {
  const gfw::CampaignResult result = gfw::run_serial(pristine_scenario());
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.segments_dropped_loss, 0u);
    EXPECT_EQ(shard.segments_dropped_outage, 0u);
    EXPECT_EQ(shard.segments_duplicated, 0u);
    EXPECT_EQ(shard.segments_reordered, 0u);
    EXPECT_EQ(shard.retransmissions, 0u);
    EXPECT_EQ(shard.probe_connect_retries, 0u);
  }
}

TEST(FaultsIntegration, TeardownWatchdogPassesFaultyAndPristine) {
  const gfw::CampaignResult faulty = gfw::run_serial(faulty_scenario());
  const gfw::CampaignResult pristine = gfw::run_serial(pristine_scenario());
  EXPECT_TRUE(faulty.teardown_clean()) << faulty.teardown_failures();
  EXPECT_TRUE(pristine.teardown_clean()) << pristine.teardown_failures();
  for (const auto& shard : faulty.shards) {
    EXPECT_EQ(shard.teardown.leaked_established, 0u);
    EXPECT_EQ(shard.teardown.stale_registrations, 0u);
    EXPECT_FALSE(shard.teardown.timers_overdue);
    EXPECT_TRUE(shard.teardown.accounting_balanced);
  }
}

TEST(FaultsIntegration, OutageWindowSurvivable) {
  // A one-hour outage mid-campaign: connections during the window fail,
  // but the campaign keeps going and the accounting still balances.
  gfw::Scenario scenario = pristine_scenario();
  scenario.faults.outages.push_back({net::TimePoint{net::hours(6)}, net::hours(1)});
  const gfw::CampaignResult result = gfw::run_serial(scenario);
  std::size_t outage_drops = 0;
  for (const auto& shard : result.shards) outage_drops += shard.segments_dropped_outage;
  EXPECT_GT(outage_drops, 0u);
  EXPECT_TRUE(result.teardown_clean()) << result.teardown_failures();
}

}  // namespace
}  // namespace gfwsim
