// Robustness: garbage storms, fragmentation fuzz, resource bounds.
#include <gtest/gtest.h>

#include "client/ss_client.h"
#include "probesim/probesim.h"
#include "gfw/world.h"
#include "servers/upstream.h"

namespace gfwsim {
namespace {

using probesim::ProbeLab;
using probesim::Reaction;
using probesim::ServerSetup;

std::vector<ServerSetup> all_setups() {
  using Impl = ServerSetup::Impl;
  std::vector<ServerSetup> out;
  const auto add = [&](Impl impl, const char* cipher) {
    ServerSetup setup;
    setup.impl = impl;
    setup.cipher = cipher;
    out.push_back(setup);
  };
  add(Impl::kLibevOld, "aes-256-ctr");
  add(Impl::kLibevOld, "rc4-md5");
  add(Impl::kLibevOld, "chacha20");
  add(Impl::kLibevOld, "aes-128-gcm");
  add(Impl::kLibevNew, "aes-256-cfb");
  add(Impl::kLibevNew, "chacha20-ietf-poly1305");
  add(Impl::kOutline106, "chacha20-ietf-poly1305");
  add(Impl::kOutline107, "chacha20-ietf-poly1305");
  add(Impl::kOutline110, "chacha20-ietf-poly1305");
  add(Impl::kSsPython, "aes-256-cfb");
  add(Impl::kSsr, "chacha20");
  add(Impl::kHardened, "aes-256-gcm");
  return out;
}

TEST(GarbageStorm, EveryServerSurvivesRandomProbes) {
  for (const auto& setup : all_setups()) {
    ProbeLab lab(setup, 0xF022);
    crypto::Rng rng(0xF023);
    for (int i = 0; i < 120; ++i) {
      const std::size_t len = rng.uniform(0, 3000);
      const auto result = lab.prober().send_probe(rng.bytes(len));
      // Garbage must never be served.
      EXPECT_NE(result.reaction, Reaction::kData)
          << probesim::impl_name(setup.impl) << " len=" << len;
    }
    // Sessions are reaped as probes close: no unbounded growth.
    EXPECT_LT(lab.server().sessions_active(), 8u) << probesim::impl_name(setup.impl);
  }
}

TEST(FragmentationFuzz, LegitFirstFlightSurvivesArbitrarySplits) {
  // Deliver a genuine client first packet in random-sized TCP segments
  // (as brdgrd or weird middleboxes would): every (non-strict) server
  // must still serve the connection.
  for (const auto& setup : all_setups()) {
    if (setup.impl == ServerSetup::Impl::kHardened) continue;  // needs timestamp
    ProbeLab lab(setup, 0xF024);
    const Bytes packet = lab.legitimate_first_packet(
        proxy::TargetSpec::hostname("example.com", 80), to_bytes("GET /"));

    // Hand-drive a connection that sends the packet in random chunks.
    auto& net = lab.network();
    net::Host& host = net.add_host(net::Ipv4(116, 99, 0, 1));
    auto obs = std::make_shared<std::size_t>(0);
    net::ConnectionCallbacks cb;
    cb.on_data = [obs](ByteSpan data) { *obs += data.size(); };
    auto conn = host.connect(lab.server_endpoint(), std::move(cb));
    lab.loop().run_until(lab.loop().now() + net::seconds(2));

    crypto::Rng rng(0xF025 + static_cast<std::uint64_t>(setup.impl));
    std::size_t offset = 0;
    while (offset < packet.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.uniform(0, 40), packet.size() - offset);
      conn->send(ByteSpan(packet.data() + offset, take));
      lab.loop().run_until(lab.loop().now() + net::milliseconds(200));
      offset += take;
    }
    lab.loop().run_until(lab.loop().now() + net::seconds(10));
    EXPECT_GT(*obs, 0u) << probesim::impl_name(setup.impl) << "/" << setup.cipher
                        << ": fragmented legit flight got no response";
    conn->close();
  }
}

TEST(GarbageStorm, ProberSimulatorHandlesEmptyAndHugePayloads) {
  ServerSetup setup;
  setup.impl = ServerSetup::Impl::kOutline107;
  ProbeLab lab(setup, 0xF026);
  crypto::Rng rng(1);
  EXPECT_EQ(lab.prober().send_probe({}).reaction, Reaction::kTimeout);
  // Larger than MSS: segmented transparently.
  EXPECT_EQ(lab.prober().send_probe(rng.bytes(10000)).reaction, Reaction::kTimeout);
}

TEST(ResourceBounds, CampaignSessionsAndFlowsStayBounded) {
  gfw::Scenario config;
  config.server.impl = ServerSetup::Impl::kOutline107;
  config.duration = net::hours(48);
  config.connection_interval = net::seconds(30);
  config.classifier_base_rate = 0.3;
  gfw::World campaign(config,
                         std::make_unique<client::BrowsingTraffic>(
                             client::BrowsingTraffic::paper_sites()),
                         0xF027);
  campaign.run();
  EXPECT_GT(campaign.connections_launched(), 4000u);
  // Server sessions get reaped; a handful may be mid-flight.
  EXPECT_LT(campaign.server().sessions_active(), 600u);
  EXPECT_EQ(campaign.gfw().probes_in_flight(), 0u);
}

TEST(MixedTraffic, ProbersAndClientsInterleaveSafely) {
  ServerSetup setup;
  setup.impl = ServerSetup::Impl::kOutline107;
  ProbeLab lab(setup, 0xF028);

  client::ClientConfig config;
  config.cipher = proxy::find_cipher(setup.cipher);
  config.password = setup.password;
  net::Host& client_host = lab.network().add_host(net::Ipv4(116, 99, 0, 2));
  client::SsClient ss(client_host, lab.server_endpoint(), config);

  for (int round = 0; round < 10; ++round) {
    auto fetch = ss.fetch(proxy::TargetSpec::hostname("example.com", 80),
                          to_bytes("GET /"));
    const auto probe = lab.prober().send_random_probe(221);
    EXPECT_EQ(probe.reaction, Reaction::kTimeout);
    lab.loop().run_until(lab.loop().now() + net::seconds(5));
    EXPECT_EQ(fetch->state(), client::Fetch::State::kDone) << round;
    fetch->close();
  }
}

}  // namespace
}  // namespace gfwsim
