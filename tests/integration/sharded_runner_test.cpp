// The sharded runner's contract: merged results are bit-identical for
// any thread count, shards never share RNG streams, and the merged log
// partitions cleanly into the per-shard slices the summaries describe.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "analysis/report.h"
#include "analysis/stats.h"
#include "gfw/runner.h"

namespace gfwsim {
namespace {

gfw::Scenario small_scenario() {
  gfw::Scenario scenario;
  scenario.server.impl = probesim::ServerSetup::Impl::kOutline107;
  scenario.duration = net::hours(12);
  scenario.connection_interval = net::seconds(60);
  scenario.classifier_base_rate = 0.3;
  scenario.base_seed = 0x5AA3D;
  return scenario;
}

// Every field of every record, plus the shard summaries — any divergence
// between runs shows up here.
std::string transcript(const gfw::CampaignResult& result) {
  std::ostringstream out;
  for (const auto& shard : result.shards) {
    out << "[shard " << shard.shard_index << " seed " << shard.seed << " conns "
        << shard.connections_launched << " offset " << shard.log_offset << " probes "
        << shard.probes << " tx " << shard.segments_transmitted << " rx "
        << shard.segments_delivered << " loss " << shard.segments_dropped_loss
        << " dup " << shard.segments_duplicated << " reord "
        << shard.segments_reordered << " rtx " << shard.retransmissions << " clean "
        << shard.teardown.clean() << "]";
  }
  out << "|";
  for (const auto& record : result.log.records()) {
    out << probesim::probe_type_name(record.type) << "," << record.payload_len << ","
        << record.src_ip.to_string() << "," << record.src_port << ","
        << static_cast<int>(record.ttl) << "," << record.tsval << ","
        << probesim::reaction_code(record.reaction) << "," << record.sent_at.count()
        << ";";
  }
  return out.str();
}

// The analysis output a bench would print from this result.
std::string report_output(const gfw::CampaignResult& result) {
  analysis::Histogram lengths;
  for (const auto& record : result.log.records()) {
    lengths.add(static_cast<std::int64_t>(record.payload_len));
  }
  std::ostringstream out;
  analysis::print_histogram(out, lengths, "payload lengths:");
  return out.str();
}

TEST(ShardedRunner, MergedResultIndependentOfThreadCount) {
  gfw::ShardedRunner serial({4, 1});
  gfw::ShardedRunner pooled({4, 4});
  const gfw::CampaignResult a = serial.run(small_scenario());
  const gfw::CampaignResult b = pooled.run(small_scenario());

  EXPECT_EQ(transcript(a), transcript(b));
  EXPECT_EQ(report_output(a), report_output(b));
  EXPECT_GT(a.log.size(), 0u);
}

TEST(ShardedRunner, ShardSlicesPartitionTheMergedLog) {
  gfw::ShardedRunner runner({3, 2});
  const gfw::CampaignResult result = runner.run(small_scenario());

  ASSERT_EQ(result.shards.size(), 3u);
  std::size_t expected_offset = 0;
  std::size_t connections = 0;
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.log_offset, expected_offset);
    expected_offset += shard.probes;
    connections += shard.connections_launched;
  }
  EXPECT_EQ(expected_offset, result.log.size());
  EXPECT_EQ(connections, result.connections_launched());
}

TEST(ShardedRunner, SerialRunMatchesSingleShardPool) {
  const gfw::CampaignResult a = gfw::run_serial(small_scenario());
  gfw::ShardedRunner runner({1, 4});
  const gfw::CampaignResult b = runner.run(small_scenario());
  EXPECT_EQ(transcript(a), transcript(b));
}

TEST(ShardedRunner, ShardSeedsArePairwiseDistinct) {
  // Distinct across shards AND across neighbouring base seeds: the
  // SplitMix64 derivation must not alias (base, i) with (base+1, j).
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ull, 1ull, 0xCA4417A16ull, 0xFFFFFFFFFFFFFFFFull}) {
    for (std::uint32_t shard = 0; shard < 64; ++shard) {
      EXPECT_TRUE(seeds.insert(gfw::shard_seed(base, shard)).second)
          << "collision at base " << base << " shard " << shard;
    }
  }
}

TEST(ShardedRunner, ShardRngStreamsDoNotOverlap) {
  // The first 16 outputs of every shard's generator are distinct — the
  // streams start far apart, not staggered copies of one another.
  std::set<std::uint64_t> outputs;
  for (std::uint32_t shard = 0; shard < 64; ++shard) {
    crypto::Rng rng(gfw::shard_seed(0xCA4417A16, shard));
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(outputs.insert(rng.next_u64()).second)
          << "overlapping stream at shard " << shard << " step " << i;
    }
  }
}

}  // namespace
}  // namespace gfwsim
