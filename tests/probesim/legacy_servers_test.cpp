// Shadowsocks-python and ShadowsocksR models — the implementations the
// paper's blocked servers ran (section 6).
#include <gtest/gtest.h>

#include "probesim/probesim.h"

namespace gfwsim::probesim {
namespace {

const proxy::TargetSpec kTarget = proxy::TargetSpec::hostname("www.wikipedia.org", 443);
const char kRequest[] = "GET / HTTP/1.1\r\nHost: www.wikipedia.org\r\n\r\n";

ServerSetup setup_for(ServerSetup::Impl impl) {
  ServerSetup setup;
  setup.impl = impl;
  setup.cipher = "aes-256-cfb";  // both predate/default to stream methods
  return setup;
}

TEST(SsPython, GenuineClientServed) {
  ProbeLab lab(setup_for(ServerSetup::Impl::kSsPython), 0x901);
  const Bytes packet = lab.legitimate_first_packet(kTarget, to_bytes(kRequest));
  EXPECT_EQ(lab.prober().send_probe(packet).reaction, Reaction::kData);
}

TEST(SsPython, InvalidAddressTypeClosesWithFin) {
  // Strict parser (no 0x0F mask): ~253/256 of random probes are invalid
  // and answered with a clean close.
  ProbeLab lab(setup_for(ServerSetup::Impl::kSsPython), 0x902);
  ReactionTally tally;
  for (int t = 0; t < 64; ++t) tally.add(lab.prober().send_random_probe(40).reaction);
  EXPECT_EQ(tally.rst, 0);
  EXPECT_GT(tally.fin, 56);  // >= ~253/256
}

TEST(SsPython, NoReplayFilterMeansIdenticalReplayReturnsData) {
  // The section 6 mechanism: these servers confirm themselves on a
  // single R1 probe — which the paper's three blocked servers ran.
  ProbeLab lab(setup_for(ServerSetup::Impl::kSsPython), 0x903);
  const Bytes recorded = lab.establish_legitimate_connection(kTarget, to_bytes(kRequest));
  const auto result = lab.prober().send_probe(recorded);
  EXPECT_EQ(result.reaction, Reaction::kData);
  EXPECT_GT(result.response_bytes, 0u);
}

TEST(Ssr, SilentOnGarbageButServesReplays) {
  ProbeLab lab(setup_for(ServerSetup::Impl::kSsr), 0x904);
  // Random probes mostly idle out (strict parser, silent errors).
  ReactionTally tally;
  for (int t = 0; t < 48; ++t) tally.add(lab.prober().send_random_probe(40).reaction);
  EXPECT_EQ(tally.rst, 0);
  EXPECT_GT(tally.timeout, 40);

  // ...but identical replays are served.
  const Bytes recorded = lab.establish_legitimate_connection(kTarget, to_bytes(kRequest));
  EXPECT_EQ(lab.prober().send_probe(recorded).reaction, Reaction::kData);
}

TEST(LegacyServers, DoubleSendShowsNoFilter) {
  for (const auto impl : {ServerSetup::Impl::kSsPython, ServerSetup::Impl::kSsr}) {
    ProbeLab lab(setup_for(impl), 0x905);
    for (int t = 0; t < 12; ++t) {
      EXPECT_FALSE(lab.prober().detect_replay_filter(221).filter_suspected())
          << impl_name(impl);
    }
  }
}

TEST(LegacyServers, RejectAeadCiphers) {
  ServerSetup setup = setup_for(ServerSetup::Impl::kSsPython);
  setup.cipher = "aes-256-gcm";
  EXPECT_THROW(ProbeLab lab(setup, 0x906), std::invalid_argument);
}

TEST(LegacyServers, ReplayOfReplayStillWorks) {
  // No filter means the GFW can replay the same payload dozens of times
  // and get DATA every time — maximal evidence accumulation.
  ProbeLab lab(setup_for(ServerSetup::Impl::kSsPython), 0x907);
  const Bytes recorded = lab.establish_legitimate_connection(kTarget, to_bytes(kRequest));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lab.prober().send_probe(recorded).reaction, Reaction::kData) << i;
  }
}

}  // namespace
}  // namespace gfwsim::probesim
