// The section 5.2.2 loop closed: infer_server_profile() must recover the
// ground truth for every server model in the lab.
#include <gtest/gtest.h>

#include "probesim/inference.h"

namespace gfwsim::probesim {
namespace {

ServerProfile profile_of(ServerSetup::Impl impl, const std::string& cipher,
                         std::uint64_t seed) {
  ServerSetup setup;
  setup.impl = impl;
  setup.cipher = cipher;
  ProbeLab lab(setup, seed);
  return infer_server_profile(lab.prober());
}

TEST(Inference, LibevOldStreamAes) {
  const auto profile = profile_of(ServerSetup::Impl::kLibevOld, "aes-256-ctr", 0x1F1);
  EXPECT_TRUE(profile.distinguishable);
  EXPECT_EQ(profile.construction, ServerProfile::Construction::kStream);
  EXPECT_EQ(profile.generation, ServerProfile::Generation::kErrorRevealing);
  ASSERT_TRUE(profile.iv_or_salt_len.has_value());
  EXPECT_EQ(*profile.iv_or_salt_len, 16u);
  ASSERT_TRUE(profile.atyp_masked.has_value());
  EXPECT_TRUE(*profile.atyp_masked);
  EXPECT_TRUE(profile.replay_filter_suspected);  // ppbloom double-send tell
}

TEST(Inference, LibevOldStreamChaCha20PinsTheCipher) {
  // A 12-byte IV identifies chacha20-ietf exactly (section 5.2.2).
  const auto profile = profile_of(ServerSetup::Impl::kLibevOld, "chacha20-ietf", 0x1F2);
  ASSERT_TRUE(profile.iv_or_salt_len.has_value());
  EXPECT_EQ(*profile.iv_or_salt_len, 12u);
  ASSERT_TRUE(profile.cipher_hint.has_value());
  EXPECT_EQ(*profile.cipher_hint, "chacha20-ietf");
}

TEST(Inference, LibevOldStreamEightByteIv) {
  const auto profile = profile_of(ServerSetup::Impl::kLibevOld, "chacha20", 0x1F3);
  ASSERT_TRUE(profile.iv_or_salt_len.has_value());
  EXPECT_EQ(*profile.iv_or_salt_len, 8u);
}

class AeadSaltSweep
    : public ::testing::TestWithParam<std::pair<const char*, std::size_t>> {};

TEST_P(AeadSaltSweep, LibevOldAeadSaltRecovered) {
  const auto [cipher, salt] = GetParam();
  const auto profile = profile_of(ServerSetup::Impl::kLibevOld, cipher, 0x1F4);
  EXPECT_TRUE(profile.distinguishable);
  EXPECT_EQ(profile.construction, ServerProfile::Construction::kAead);
  EXPECT_EQ(profile.generation, ServerProfile::Generation::kErrorRevealing);
  ASSERT_TRUE(profile.iv_or_salt_len.has_value());
  EXPECT_EQ(*profile.iv_or_salt_len, salt);
}

INSTANTIATE_TEST_SUITE_P(Salts, AeadSaltSweep,
                         ::testing::Values(std::make_pair("aes-128-gcm", 16u),
                                           std::make_pair("aes-192-gcm", 24u),
                                           std::make_pair("aes-256-gcm", 32u)));

TEST(Inference, Outline106Signature) {
  const auto profile =
      profile_of(ServerSetup::Impl::kOutline106, "chacha20-ietf-poly1305", 0x1F5);
  EXPECT_TRUE(profile.distinguishable);
  EXPECT_TRUE(profile.outline_v106_signature);
  ASSERT_TRUE(profile.cipher_hint.has_value());
  EXPECT_EQ(*profile.cipher_hint, "chacha20-ietf-poly1305");
}

TEST(Inference, LibevNewStreamIsStillFingerprintable) {
  // v3.3.1+ silenced the RSTs, but the occasional FIN from a failed
  // upstream dial still reveals a masked stream parser.
  const auto profile = profile_of(ServerSetup::Impl::kLibevNew, "aes-256-ctr", 0x1F6);
  EXPECT_TRUE(profile.distinguishable);
  EXPECT_EQ(profile.construction, ServerProfile::Construction::kStream);
  EXPECT_EQ(profile.generation, ServerProfile::Generation::kProbeResistant);
}

TEST(Inference, SsPythonProfile) {
  const auto profile = profile_of(ServerSetup::Impl::kSsPython, "aes-256-cfb", 0x1F7);
  EXPECT_TRUE(profile.distinguishable);
  EXPECT_EQ(profile.construction, ServerProfile::Construction::kStream);
  EXPECT_EQ(profile.generation, ServerProfile::Generation::kErrorRevealing);
  ASSERT_TRUE(profile.atyp_masked.has_value());
  EXPECT_FALSE(*profile.atyp_masked);  // strict parser, FIN at 253/256 rate
  ASSERT_TRUE(profile.iv_or_salt_len.has_value());
  EXPECT_EQ(*profile.iv_or_salt_len, 16u);
  EXPECT_FALSE(profile.replay_filter_suspected);  // the section 6 weakness
}

TEST(Inference, ProbeResistantServersAreIndistinguishable) {
  // The paper's end-state recommendation: nothing to fingerprint.
  for (const auto impl : {ServerSetup::Impl::kOutline107, ServerSetup::Impl::kOutline110,
                          ServerSetup::Impl::kLibevNew, ServerSetup::Impl::kHardened}) {
    const std::string cipher =
        impl == ServerSetup::Impl::kLibevNew ? "aes-256-gcm" : "chacha20-ietf-poly1305";
    const auto profile = profile_of(impl, cipher, 0x1F8);
    EXPECT_FALSE(profile.distinguishable) << impl_name(impl) << ": " << profile.describe();
  }
}

TEST(Inference, DescribeIsHumanReadable) {
  const auto fingerprintable = profile_of(ServerSetup::Impl::kLibevOld, "aes-256-ctr", 0x1F9);
  EXPECT_NE(fingerprintable.describe().find("stream"), std::string::npos);
  EXPECT_NE(fingerprintable.describe().find("IV 16"), std::string::npos);

  const auto silent =
      profile_of(ServerSetup::Impl::kHardened, "chacha20-ietf-poly1305", 0x1FA);
  EXPECT_NE(silent.describe().find("probe-resistant"), std::string::npos);
}

}  // namespace
}  // namespace gfwsim::probesim
