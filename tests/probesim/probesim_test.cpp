// Unit tests for the prober simulator itself (mutations, batteries,
// tallies).
#include <gtest/gtest.h>

#include "probesim/probesim.h"

namespace gfwsim::probesim {
namespace {

TEST(MutateReplay, R1IsIdentical) {
  crypto::Rng rng(1);
  const Bytes payload = rng.bytes(100);
  EXPECT_EQ(mutate_replay(payload, ProbeType::kR1, rng), payload);
}

TEST(MutateReplay, R2ChangesExactlyByteZero) {
  crypto::Rng rng(2);
  const Bytes payload = rng.bytes(100);
  const Bytes mutated = mutate_replay(payload, ProbeType::kR2, rng);
  ASSERT_EQ(mutated.size(), payload.size());
  EXPECT_NE(mutated[0], payload[0]);
  EXPECT_EQ(Bytes(mutated.begin() + 1, mutated.end()),
            Bytes(payload.begin() + 1, payload.end()));
}

TEST(MutateReplay, R3ChangesBytes0To7And62To63) {
  crypto::Rng rng(3);
  const Bytes payload = rng.bytes(100);
  const Bytes mutated = mutate_replay(payload, ProbeType::kR3, rng);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const bool should_change = i <= 7 || i == 62 || i == 63;
    if (should_change) {
      EXPECT_NE(mutated[i], payload[i]) << i;
    } else {
      EXPECT_EQ(mutated[i], payload[i]) << i;
    }
  }
}

TEST(MutateReplay, R4ChangesByte16AndR5Bytes6And16) {
  crypto::Rng rng(4);
  const Bytes payload = rng.bytes(64);
  const Bytes r4 = mutate_replay(payload, ProbeType::kR4, rng);
  EXPECT_NE(r4[16], payload[16]);
  EXPECT_EQ(r4[15], payload[15]);
  EXPECT_EQ(r4[17], payload[17]);

  const Bytes r5 = mutate_replay(payload, ProbeType::kR5, rng);
  EXPECT_NE(r5[6], payload[6]);
  EXPECT_NE(r5[16], payload[16]);
  EXPECT_EQ(r5[7], payload[7]);
}

TEST(MutateReplay, OffsetsBeyondPayloadAreSkipped) {
  crypto::Rng rng(5);
  const Bytes tiny = rng.bytes(10);  // bytes 16, 62, 63 do not exist
  const Bytes r4 = mutate_replay(tiny, ProbeType::kR4, rng);
  EXPECT_EQ(r4, tiny);
  const Bytes r3 = mutate_replay(tiny, ProbeType::kR3, rng);
  for (std::size_t i = 0; i <= 7; ++i) EXPECT_NE(r3[i], tiny[i]);
  EXPECT_EQ(r3[8], tiny[8]);
}

TEST(MutateReplay, NrTypesRejected) {
  crypto::Rng rng(6);
  const Bytes payload = rng.bytes(10);
  EXPECT_THROW(mutate_replay(payload, ProbeType::kNR1, rng), std::invalid_argument);
  EXPECT_THROW(mutate_replay(payload, ProbeType::kNR2, rng), std::invalid_argument);
}

TEST(Nr1Lengths, ExactTrioSet) {
  const auto& lengths = nr1_lengths();
  EXPECT_EQ(lengths.size(), 21u);
  const std::set<std::size_t> set(lengths.begin(), lengths.end());
  for (const std::size_t n : {8u, 12u, 16u, 22u, 33u, 41u, 49u}) {
    EXPECT_TRUE(set.count(n - 1));
    EXPECT_TRUE(set.count(n));
    EXPECT_TRUE(set.count(n + 1));
  }
}

TEST(ReactionNames, AllDistinct) {
  EXPECT_EQ(reaction_name(Reaction::kTimeout), "TIMEOUT");
  EXPECT_EQ(reaction_code(Reaction::kData), 'D');
  EXPECT_EQ(probe_type_name(ProbeType::kNR2), "NR2");
}

TEST(ProbeLab, RefusedPortYieldsRst) {
  // A ProbeLab whose server listens on 8388; probing something else on
  // the same host is refused.
  ServerSetup setup;
  setup.impl = ServerSetup::Impl::kOutline107;
  ProbeLab lab(setup, 99);
  ProberSimulator other(lab.network(), *lab.network().host(net::Ipv4(202, 96, 0, 99)),
                        net::Endpoint{lab.server_endpoint().addr, 9999}, 100);
  EXPECT_EQ(other.send_random_probe(50).reaction, Reaction::kRst);
}

TEST(ProbeLab, SweepIsDeterministicPerSeed) {
  ServerSetup setup;
  setup.impl = ServerSetup::Impl::kLibevOld;
  setup.cipher = "aes-256-ctr";
  const auto run = [&](std::uint64_t seed) {
    ProbeLab lab(setup, seed);
    const auto sweep = lab.prober().random_length_sweep({20, 40}, 16);
    return std::make_tuple(sweep.at(20).rst, sweep.at(40).rst, sweep.at(40).fin);
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(456));  // with overwhelming probability
}

}  // namespace
}  // namespace gfwsim::probesim
