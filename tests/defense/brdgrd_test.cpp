#include <gtest/gtest.h>

#include "client/ss_client.h"
#include "defense/brdgrd.h"
#include "probesim/probesim.h"
#include "servers/upstream.h"

namespace gfwsim::defense {
namespace {

struct BrdgrdFixture : ::testing::Test {
  net::EventLoop loop;
  net::Network net{loop};
  servers::SimulatedInternet internet{crypto::Rng(1)};
  net::Host& client_host = net.add_host(net::Ipv4(116, 1, 1, 1));
  net::Host& server_host = net.add_host(net::Ipv4(203, 0, 113, 10));
  net::Endpoint server_ep{server_host.addr(), 8388};
  std::unique_ptr<servers::ProxyServerBase> server;

  void install_with_brdgrd(Brdgrd& guard) {
    internet.add_site("example.com", servers::fixed_http_responder(256));
    probesim::ServerSetup setup;
    setup.impl = probesim::ServerSetup::Impl::kOutline107;
    server = probesim::make_server(setup, loop, &internet, 2);
    guard.install(server_host, 8388, server->acceptor());
  }

  client::ClientConfig client_config() {
    client::ClientConfig config;
    config.cipher = proxy::find_cipher("chacha20-ietf-poly1305");
    config.password = "correct horse battery staple";
    return config;
  }
};

TEST_F(BrdgrdFixture, FirstFlightIsFragmented) {
  Brdgrd guard(loop, BrdgrdConfig{}, 3);
  install_with_brdgrd(guard);

  std::vector<std::size_t> first_data_sizes;
  bool first_seen = false;
  net.set_tap([&](const net::SegmentRecord& rec) {
    if (rec.segment.is_data() && rec.segment.src.addr == client_host.addr()) {
      first_data_sizes.push_back(rec.segment.payload.size());
      first_seen = true;
    }
  });

  client::SsClient ss(client_host, server_ep, client_config());
  auto fetch = ss.fetch(proxy::TargetSpec::hostname("example.com", 80),
                        to_bytes("GET / HTTP/1.1\r\n\r\n"));
  loop.run_until(net::seconds(30));

  ASSERT_EQ(fetch->state(), client::Fetch::State::kDone);  // still works
  ASSERT_TRUE(first_seen);
  // The first data segment the GFW would classify is tiny.
  EXPECT_LE(first_data_sizes[0], BrdgrdConfig{}.max_window);
  EXPECT_GT(first_data_sizes.size(), 2u);
  EXPECT_EQ(guard.connections_clamped(), 1u);
}

TEST_F(BrdgrdFixture, DisabledGuardPassesFullSegments) {
  Brdgrd guard(loop, BrdgrdConfig{}, 4);
  guard.disable();
  install_with_brdgrd(guard);

  std::vector<std::size_t> sizes;
  net.set_tap([&](const net::SegmentRecord& rec) {
    if (rec.segment.is_data() && rec.segment.src.addr == client_host.addr()) {
      sizes.push_back(rec.segment.payload.size());
    }
  });

  client::SsClient ss(client_host, server_ep, client_config());
  auto fetch = ss.fetch(proxy::TargetSpec::hostname("example.com", 80),
                        to_bytes("GET / HTTP/1.1\r\n\r\n"));
  loop.run_until(net::seconds(30));
  ASSERT_EQ(fetch->state(), client::Fetch::State::kDone);
  ASSERT_FALSE(sizes.empty());
  EXPECT_GT(sizes[0], 100u);  // the whole first flight in one segment
  EXPECT_EQ(guard.connections_clamped(), 0u);
}

TEST_F(BrdgrdFixture, WindowRestoresAfterHandshake) {
  BrdgrdConfig config;
  config.restore_after = net::milliseconds(400);
  Brdgrd guard(loop, config, 5);
  install_with_brdgrd(guard);

  client::SsClient ss(client_host, server_ep, client_config());
  auto fetch = ss.fetch(proxy::TargetSpec::hostname("example.com", 80),
                        to_bytes("GET /"));
  loop.run_until(net::seconds(30));
  ASSERT_EQ(fetch->state(), client::Fetch::State::kDone);

  // A later large write goes out in MSS-sized segments again.
  std::vector<std::size_t> sizes;
  net.set_tap([&](const net::SegmentRecord& rec) {
    if (rec.segment.is_data() && rec.segment.src.addr == client_host.addr()) {
      sizes.push_back(rec.segment.payload.size());
    }
  });
  // (Using a raw connection for simplicity: window state is per-conn, so
  // open a fresh one after the guard window restored... fresh conns are
  // clamped again by design. Instead check the clamp count only grows
  // per-connection.)
  EXPECT_EQ(guard.connections_clamped(), 1u);
}

TEST_F(BrdgrdFixture, StickyModeKeepsWindowStableWithinPeriod) {
  BrdgrdConfig config;
  config.randomize_window = false;
  config.sticky_period = net::hours(1);
  Brdgrd guard(loop, config, 6);
  install_with_brdgrd(guard);

  std::set<std::uint32_t> windows;
  net.set_tap([&](const net::SegmentRecord& rec) {
    if (rec.segment.has(net::TcpFlag::kSyn) && rec.segment.has(net::TcpFlag::kAck)) {
      windows.insert(rec.segment.window);
    }
  });

  client::SsClient ss(client_host, server_ep, client_config());
  for (int i = 0; i < 5; ++i) {
    auto fetch = ss.fetch(proxy::TargetSpec::hostname("example.com", 80),
                          to_bytes("GET /"));
    loop.run_until(loop.now() + net::seconds(30));
  }
  // One sticky window for all five connections within the hour.
  EXPECT_EQ(windows.size(), 1u);
}

TEST_F(BrdgrdFixture, RandomModeVariesWindow) {
  BrdgrdConfig config;
  config.randomize_window = true;
  config.min_window = 20;
  config.max_window = 40;
  Brdgrd guard(loop, config, 7);
  install_with_brdgrd(guard);

  std::set<std::uint32_t> windows;
  net.set_tap([&](const net::SegmentRecord& rec) {
    if (rec.segment.has(net::TcpFlag::kSyn) && rec.segment.has(net::TcpFlag::kAck)) {
      windows.insert(rec.segment.window);
    }
  });

  client::SsClient ss(client_host, server_ep, client_config());
  for (int i = 0; i < 10; ++i) {
    auto fetch = ss.fetch(proxy::TargetSpec::hostname("example.com", 80),
                          to_bytes("GET /"));
    loop.run_until(loop.now() + net::seconds(30));
  }
  // The paper's fingerprintability complaint: windows vary per connection.
  EXPECT_GT(windows.size(), 2u);
  for (const std::uint32_t w : windows) {
    EXPECT_GE(w, 20u);
    EXPECT_LE(w, 40u);
  }
}

}  // namespace
}  // namespace gfwsim::defense
